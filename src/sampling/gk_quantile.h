// Greenwald-Khanna quantile summary (SIGMOD 2001) — §8's contrast case:
// an algorithm whose compress phase merges *adjacent* samples and hence
// does not fit the sampling operator's per-sample template; the paper
// recommends running it as a stream UDAF instead. We provide it both as a
// standalone sketch and as the quantile() aggregate function of the query
// language (see expr/aggregate.*), closing that loop.
//
// The summary stores tuples (v, g, delta): v a seen value, g the gap in
// minimum rank to the previous tuple, delta the rank uncertainty.
// Invariant: g + delta <= floor(2 * eps * n) for interior tuples, which
// guarantees any phi-quantile query is answered within rank error eps * n.

#ifndef STREAMOP_SAMPLING_GK_QUANTILE_H_
#define STREAMOP_SAMPLING_GK_QUANTILE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/serde.h"

namespace streamop {

class GkQuantileSketch {
 public:
  /// eps: the rank-error bound (e.g. 0.01 -> ranks within 1% of n).
  explicit GkQuantileSketch(double eps = 0.01);

  /// Inserts one value.
  void Insert(double v);

  /// Value whose rank is within eps*n of phi*n. Returns 0 for an empty
  /// sketch. phi is clamped to [0, 1].
  double Query(double phi) const;

  uint64_t count() const { return n_; }
  size_t summary_size() const { return tuples_.size(); }
  double eps() const { return eps_; }

  void Clear() {
    tuples_.clear();
    n_ = 0;
    since_compress_ = 0;
  }

  /// Checkpoint: eps, counts and the full (v, g, delta) summary.
  void SerializeTo(ByteWriter& w) const {
    w.F64(eps_);
    w.U64(n_);
    w.U64(since_compress_);
    w.U64(tuples_.size());
    for (const Entry& e : tuples_) {
      w.F64(e.v);
      w.U64(e.g);
      w.U64(e.delta);
    }
  }
  void RestoreFrom(ByteReader& r) {
    eps_ = r.F64();
    n_ = r.U64();
    since_compress_ = r.U64();
    tuples_.clear();
    uint64_t n = r.U64();
    if (!r.CheckCount(n, 24)) return;
    tuples_.reserve(static_cast<size_t>(n));
    for (uint64_t i = 0; i < n; ++i) {
      Entry e;
      e.v = r.F64();
      e.g = r.U64();
      e.delta = r.U64();
      tuples_.push_back(e);
    }
  }

 private:
  struct Entry {
    double v;
    uint64_t g;
    uint64_t delta;
  };

  // Merges adjacent entries whose combined uncertainty stays within the
  // invariant — the "inter-sample communication" §8 points out.
  void Compress();

  double eps_;
  uint64_t n_ = 0;
  uint64_t since_compress_ = 0;
  std::vector<Entry> tuples_;  // sorted by v
};

}  // namespace streamop

#endif  // STREAMOP_SAMPLING_GK_QUANTILE_H_
