// Greenwald-Khanna quantile summary (SIGMOD 2001) — §8's contrast case:
// an algorithm whose compress phase merges *adjacent* samples and hence
// does not fit the sampling operator's per-sample template; the paper
// recommends running it as a stream UDAF instead. We provide it both as a
// standalone sketch and as the quantile() aggregate function of the query
// language (see expr/aggregate.*), closing that loop.
//
// The summary stores tuples (v, g, delta): v a seen value, g the gap in
// minimum rank to the previous tuple, delta the rank uncertainty.
// Invariant: g + delta <= floor(2 * eps * n) for interior tuples, which
// guarantees any phi-quantile query is answered within rank error eps * n.

#ifndef STREAMOP_SAMPLING_GK_QUANTILE_H_
#define STREAMOP_SAMPLING_GK_QUANTILE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace streamop {

class GkQuantileSketch {
 public:
  /// eps: the rank-error bound (e.g. 0.01 -> ranks within 1% of n).
  explicit GkQuantileSketch(double eps = 0.01);

  /// Inserts one value.
  void Insert(double v);

  /// Value whose rank is within eps*n of phi*n. Returns 0 for an empty
  /// sketch. phi is clamped to [0, 1].
  double Query(double phi) const;

  uint64_t count() const { return n_; }
  size_t summary_size() const { return tuples_.size(); }
  double eps() const { return eps_; }

  void Clear() {
    tuples_.clear();
    n_ = 0;
    since_compress_ = 0;
  }

 private:
  struct Entry {
    double v;
    uint64_t g;
    uint64_t delta;
  };

  // Merges adjacent entries whose combined uncertainty stays within the
  // invariant — the "inter-sample communication" §8 points out.
  void Compress();

  double eps_;
  uint64_t n_ = 0;
  uint64_t since_compress_ = 0;
  std::vector<Entry> tuples_;  // sorted by v
};

}  // namespace streamop

#endif  // STREAMOP_SAMPLING_GK_QUANTILE_H_
