// Priority sampling [Duffield, Lund, Thorup, 2004] — the successor of
// subset-sum sampling and the natural "extension" algorithm for this
// operator (admission + cleaning fit the same template): each item of
// weight w gets priority q = w / u with u uniform in (0,1]; the k highest
// priorities are kept, and any subset sum is estimated by
// sum(max(w_i, tau)) over kept subset members, where tau is the (k+1)st
// highest priority.

#ifndef STREAMOP_SAMPLING_PRIORITY_H_
#define STREAMOP_SAMPLING_PRIORITY_H_

#include <algorithm>
#include <cstdint>
#include <queue>
#include <vector>

#include "common/random.h"
#include "common/serde.h"

namespace streamop {

template <typename T>
class PrioritySampler {
 public:
  struct Kept {
    T item;
    double weight;
    double priority;
  };

  PrioritySampler(uint64_t k, uint64_t seed) : k_(k), rng_(seed) {}

  void Offer(const T& item, double weight) {
    double u = rng_.NextDoubleOpen();
    double q = weight / u;
    if (heap_.size() < k_ + 1) {
      heap_.push(Kept{item, weight, q});
      return;
    }
    if (q > heap_.top().priority) {
      heap_.pop();
      heap_.push(Kept{item, weight, q});
    }
  }

  /// Threshold tau: the smallest retained priority (the (k+1)st highest
  /// overall once more than k items were offered); 0 before that.
  double tau() const {
    return heap_.size() > k_ ? heap_.top().priority : 0.0;
  }

  /// The k retained samples with their Horvitz-Thompson adjusted weights
  /// max(w, tau). (The (k+1)st item defines tau and is not part of the
  /// sample.)
  std::vector<Kept> Samples() const {
    std::vector<Kept> all = HeapContents();
    std::sort(all.begin(), all.end(), [](const Kept& a, const Kept& b) {
      return a.priority > b.priority;
    });
    if (all.size() > k_) all.resize(k_);
    double t = tau();
    for (Kept& s : all) s.weight = std::max(s.weight, t);
    return all;
  }

  /// Unbiased estimate of the total weight offered.
  double EstimateSum() const {
    double s = 0.0;
    for (const Kept& kpt : Samples()) s += kpt.weight;
    return s;
  }

  size_t size() const { return std::min<size_t>(heap_.size(), k_); }

  void Clear() {
    while (!heap_.empty()) heap_.pop();
  }

  /// Checkpoint: config, RNG position and the retained heap contents (in
  /// priority order — the heap is rebuilt by re-pushing on restore).
  void SerializeTo(ByteWriter& w) const {
    w.U64(k_);
    rng_.SerializeTo(w);
    std::vector<Kept> all = HeapContents();
    w.U64(all.size());
    for (const Kept& s : all) {
      SerdeWrite(w, s.item);
      w.F64(s.weight);
      w.F64(s.priority);
    }
  }
  void RestoreFrom(ByteReader& r) {
    k_ = r.U64();
    rng_.RestoreFrom(r);
    Clear();
    uint64_t n = r.U64();
    if (!r.CheckCount(n, 16)) return;
    for (uint64_t i = 0; i < n; ++i) {
      Kept s{};
      SerdeRead(r, &s.item);
      s.weight = r.F64();
      s.priority = r.F64();
      heap_.push(std::move(s));
    }
  }

 private:
  struct MinByPriority {
    bool operator()(const Kept& a, const Kept& b) const {
      return a.priority > b.priority;  // min-heap on priority
    }
  };

  std::vector<Kept> HeapContents() const {
    // std::priority_queue hides its container; copy via a drain.
    auto copy = heap_;
    std::vector<Kept> out;
    out.reserve(copy.size());
    while (!copy.empty()) {
      out.push_back(copy.top());
      copy.pop();
    }
    return out;
  }

  uint64_t k_;
  Pcg64 rng_;
  std::priority_queue<Kept, std::vector<Kept>, MinByPriority> heap_;
};

}  // namespace streamop

#endif  // STREAMOP_SAMPLING_PRIORITY_H_
