// Uniform random sampling baselines: Bernoulli (coin-flip per tuple, the
// semantics of Aurora's DROP operator / STREAM's SAMPLE keyword) and
// systematic 1-in-k sampling. These are the "conventional random sampling"
// the paper's richer samplers are compared against.

#ifndef STREAMOP_SAMPLING_BERNOULLI_H_
#define STREAMOP_SAMPLING_BERNOULLI_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace streamop {

/// Keeps each offered item independently with probability p. The
/// Horvitz-Thompson estimate of any subset sum scales kept weights by 1/p.
template <typename T>
class BernoulliSampler {
 public:
  BernoulliSampler(double p, uint64_t seed) : p_(p), rng_(seed) {}

  bool Offer(const T& item) {
    ++offered_;
    if (rng_.NextBernoulli(p_)) {
      sample_.push_back(item);
      return true;
    }
    return false;
  }

  double p() const { return p_; }
  uint64_t offered() const { return offered_; }
  const std::vector<T>& sample() const { return sample_; }

  /// Scale factor for unbiased sum/count estimates from the sample.
  double InverseInclusionProbability() const { return 1.0 / p_; }

  void Clear() {
    sample_.clear();
    offered_ = 0;
  }

  void SerializeTo(ByteWriter& w) const {
    w.F64(p_);
    rng_.SerializeTo(w);
    w.U64(offered_);
    SerdeWriteVector(w, sample_);
  }
  void RestoreFrom(ByteReader& r) {
    p_ = r.F64();
    rng_.RestoreFrom(r);
    offered_ = r.U64();
    SerdeReadVector(r, &sample_);
  }

 private:
  double p_;
  Pcg64 rng_;
  uint64_t offered_ = 0;
  std::vector<T> sample_;
};

/// Deterministic 1-in-k systematic sampling with a random phase.
template <typename T>
class SystematicSampler {
 public:
  SystematicSampler(uint64_t k, uint64_t seed) : k_(k == 0 ? 1 : k) {
    Pcg64 rng(seed);
    phase_ = rng.NextBounded(k_);
  }

  bool Offer(const T& item) {
    bool keep = (offered_ % k_) == phase_;
    ++offered_;
    if (keep) sample_.push_back(item);
    return keep;
  }

  const std::vector<T>& sample() const { return sample_; }
  uint64_t offered() const { return offered_; }

  void SerializeTo(ByteWriter& w) const {
    w.U64(k_);
    w.U64(phase_);
    w.U64(offered_);
    SerdeWriteVector(w, sample_);
  }
  void RestoreFrom(ByteReader& r) {
    k_ = r.U64();
    phase_ = r.U64();
    offered_ = r.U64();
    SerdeReadVector(r, &sample_);
  }

 private:
  uint64_t k_;
  uint64_t phase_;
  uint64_t offered_ = 0;
  std::vector<T> sample_;
};

}  // namespace streamop

#endif  // STREAMOP_SAMPLING_BERNOULLI_H_
