// The decision core of Duffield-Lund-Thorup subset-sum (threshold)
// sampling, exactly as described in §4.4 of the paper:
//
//   * every tuple with weight x > z is sampled;
//   * smaller tuples accumulate into a counter; each time the counter
//     exceeds z, z is subtracted and the current tuple is sampled with its
//     weight adjusted up to z.
//
// The same core drives the standalone samplers, the cleaning-phase
// subsampling, and the ssample()/ssclean_with() stateful functions of the
// operator, so the admission logic exists in exactly one place.

#ifndef STREAMOP_SAMPLING_THRESHOLD_CORE_H_
#define STREAMOP_SAMPLING_THRESHOLD_CORE_H_

#include <cstdint>

#include "common/random.h"

namespace streamop {

/// Outcome of offering one weighted item to the threshold sampler.
struct ThresholdDecision {
  bool sampled = false;
  double adjusted_weight = 0.0;  // max(x, z) when sampled; 0 otherwise
  bool was_large = false;        // x > z (counted as B in the z-adjustment)
};

/// How small (x <= z) tuples are admitted.
enum class ThresholdMode {
  /// The counter scheme the paper spells out in §4.4: small weights
  /// accumulate, and one sample of weight z is emitted each time the
  /// counter crosses z. Deterministic, and the window estimate deviates
  /// from the truth by at most one z (the final counter residue).
  kCounter,
  /// The original Duffield-Lund-Thorup rule: sample with probability
  /// x / z independently per tuple. Unbiased, but a window whose total is
  /// only a few z has a right-skewed estimate — most draws land below the
  /// truth. This is the behaviour the paper's Fig. 2 exhibits when the
  /// non-relaxed threshold overshoots after a load drop.
  kProbabilistic,
};

/// Threshold sampling at a fixed threshold z.
/// E[sum of adjusted weights over any subset] equals the true subset sum.
class ThresholdSamplerCore {
 public:
  explicit ThresholdSamplerCore(double z = 1.0,
                                ThresholdMode mode = ThresholdMode::kCounter,
                                uint64_t seed = 1)
      : z_(z), mode_(mode), rng_(seed) {}

  double z() const { return z_; }

  /// Changes the threshold without touching the small-weight counter; used
  /// when a cleaning phase re-seeds the sampler at a new z.
  void set_z(double z) { z_ = z; }

  void ResetCounter() { counter_ = 0.0; }
  double counter() const { return counter_; }

  ThresholdMode mode() const { return mode_; }

  /// Offers one item of weight x.
  ThresholdDecision Offer(double x) {
    ThresholdDecision d;
    if (x > z_) {
      d.sampled = true;
      d.adjusted_weight = x;
      d.was_large = true;
      return d;
    }
    if (mode_ == ThresholdMode::kProbabilistic) {
      if (z_ > 0.0 && rng_.NextDouble() < x / z_) {
        d.sampled = true;
        d.adjusted_weight = z_;
      }
      return d;
    }
    counter_ += x;
    if (counter_ > z_) {
      counter_ -= z_;
      d.sampled = true;
      d.adjusted_weight = z_;  // small samples represent weight z
    }
    return d;
  }

  /// Checkpoint: threshold, counter residue and RNG position — everything
  /// the admit decision for the next tuple depends on.
  void SerializeTo(ByteWriter& w) const {
    w.F64(z_);
    w.F64(counter_);
    w.U8(static_cast<uint8_t>(mode_));
    rng_.SerializeTo(w);
  }
  void RestoreFrom(ByteReader& r) {
    z_ = r.F64();
    counter_ = r.F64();
    mode_ = static_cast<ThresholdMode>(r.U8());
    rng_.RestoreFrom(r);
  }

 private:
  double z_;
  double counter_ = 0.0;
  ThresholdMode mode_ = ThresholdMode::kCounter;
  Pcg64 rng_;
};

/// The "aggressive" z-threshold adjustment of §4.4 used by dynamic
/// subset-sum sampling:
///   if 0 <= |S| < M :  z_new = z_old * (|S| / M)
///   if |S| >= M     :  z_new = z_old * max(1, (|S| - B) / (M - B))
/// where |S| is the current sample count, M the desired sample count, and
/// B the number of samples whose (adjusted) size exceeds the threshold.
double AggressiveZAdjust(double z_old, uint64_t sample_count,
                         uint64_t desired_count, uint64_t large_count);

}  // namespace streamop

#endif  // STREAMOP_SAMPLING_THRESHOLD_CORE_H_
