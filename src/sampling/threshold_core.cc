#include "sampling/threshold_core.h"

#include <algorithm>

namespace streamop {

double AggressiveZAdjust(double z_old, uint64_t sample_count,
                         uint64_t desired_count, uint64_t large_count) {
  if (desired_count == 0) return z_old;
  const double s = static_cast<double>(sample_count);
  const double m = static_cast<double>(desired_count);
  if (sample_count < desired_count) {
    // Shrink z proportionally; guard against collapsing to 0 when the
    // sample is empty (keep at least 1/M of the old threshold).
    double factor = s / m;
    if (factor < 1.0 / m) factor = 1.0 / m;
    return z_old * factor;
  }
  // Grow z so that the expected number of small samples shrinks to M - B.
  double b = static_cast<double>(std::min(large_count, desired_count - 1));
  double factor = (s - b) / (m - b);
  // When B approaches M the raw formula explodes (the denominator can hit
  // 1), wildly overshooting the threshold — it ignores that raising z
  // reclassifies most "large" samples as small. Cap the per-phase growth at
  // max(2, |S|/M): convergence then takes a few extra (cheap) cleaning
  // phases instead of collapsing the sample, matching the paper's "large
  // number of cleaning phases to identify the appropriate threshold".
  double cap = s / m;
  if (cap < 2.0) cap = 2.0;
  if (factor > cap) factor = cap;
  if (factor < 1.0) factor = 1.0;
  return z_old * factor;
}

}  // namespace streamop
