// Distinct sampling [Gibbons, VLDB 2001], the "distinct counts" algorithm
// the paper cites in §2: maintain a uniform sample of the *distinct*
// elements of a stream (with per-element occurrence counts) in bounded
// space, by admitting an element iff its hash has at least `level` trailing
// zero bits. When the sample outgrows its capacity the level is raised and
// ineligible elements are purged — exactly the admit/clean template of the
// sampling operator (the sfun package lives in src/core/sfun_distinct.*).
//
// Estimators: distinct count ~ |sample| * 2^level; rarity (fraction of
// distinct elements occurring exactly once) from the sampled counts.

#ifndef STREAMOP_SAMPLING_DISTINCT_H_
#define STREAMOP_SAMPLING_DISTINCT_H_

#include <cstdint>

#include <algorithm>
#include <utility>
#include <vector>

#include "common/flat_hash_table.h"
#include "common/hash.h"
#include "common/serde.h"

namespace streamop {

/// Number of trailing zero bits of a hash (64 for h == 0); the element's
/// "sampling level" in Gibbons' scheme.
inline uint32_t HashLevel(uint64_t h) {
  if (h == 0) return 64;
  return static_cast<uint32_t>(__builtin_ctzll(h));
}

class DistinctSampler {
 public:
  /// `capacity`: maximum number of distinct elements retained.
  explicit DistinctSampler(size_t capacity, uint64_t hash_seed = 0)
      : capacity_(capacity == 0 ? 1 : capacity), hash_seed_(hash_seed) {}

  /// Processes one stream element.
  void Offer(uint64_t element) {
    uint64_t h = SeededHash64(element, hash_seed_);
    if (HashLevel(h) < level_) return;
    auto [it, inserted] = sample_.try_emplace(element, 0);
    ++it->second;
    if (inserted && sample_.size() > capacity_) RaiseLevel();
  }

  /// Unbiased estimate of the number of distinct elements seen.
  double EstimateDistinctCount() const {
    return static_cast<double>(sample_.size()) *
           static_cast<double>(uint64_t{1} << level_);
  }

  /// Estimated fraction of distinct elements occurring exactly once,
  /// computed over the uniform distinct-element sample.
  double EstimateRarity() const {
    if (sample_.empty()) return 0.0;
    size_t singletons = 0;
    for (const auto& [e, c] : sample_) {
      if (c == 1) ++singletons;
    }
    return static_cast<double>(singletons) /
           static_cast<double>(sample_.size());
  }

  uint32_t level() const { return level_; }
  size_t size() const { return sample_.size(); }
  size_t capacity() const { return capacity_; }

  /// element -> occurrence count for the retained distinct elements.
  const FlatHashTable<uint64_t, uint64_t>& sample() const { return sample_; }

  void Clear() {
    sample_.clear();
    level_ = 0;
  }

  /// Checkpoint: config, level and the retained (element, count) sample,
  /// emitted sorted by element so equal states serialize identically.
  void SerializeTo(ByteWriter& w) const {
    w.U64(capacity_);
    w.U64(hash_seed_);
    w.U32(level_);
    std::vector<std::pair<uint64_t, uint64_t>> sorted;
    sorted.reserve(sample_.size());
    for (const auto& [e, c] : sample_) sorted.emplace_back(e, c);
    std::sort(sorted.begin(), sorted.end());
    w.U64(sorted.size());
    for (const auto& [e, c] : sorted) {
      w.U64(e);
      w.U64(c);
    }
  }
  void RestoreFrom(ByteReader& r) {
    capacity_ = r.U64();
    hash_seed_ = r.U64();
    level_ = r.U32();
    sample_.clear();
    uint64_t n = r.U64();
    if (!r.CheckCount(n, 16)) return;
    sample_.reserve(static_cast<size_t>(n));
    for (uint64_t i = 0; i < n; ++i) {
      uint64_t e = r.U64();
      uint64_t c = r.U64();
      sample_.emplace(e, c);
    }
  }

 private:
  // Raises the level until the sample fits; each +1 halves the expected
  // sample (elements whose hash lacks the extra trailing zero are purged).
  // The purge predicate depends only on the element, so the flat table's
  // possible double visit under erase-while-iterating is harmless.
  void RaiseLevel() {
    while (sample_.size() > capacity_ && level_ < 63) {
      ++level_;
      for (auto it = sample_.begin(); it != sample_.end();) {
        if (HashLevel(SeededHash64(it->first, hash_seed_)) < level_) {
          it = sample_.erase(it);
        } else {
          ++it;
        }
      }
    }
  }

  size_t capacity_;
  uint64_t hash_seed_;
  uint32_t level_ = 0;
  FlatHashTable<uint64_t, uint64_t> sample_;
};

}  // namespace streamop

#endif  // STREAMOP_SAMPLING_DISTINCT_H_
