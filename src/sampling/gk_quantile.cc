#include "sampling/gk_quantile.h"

#include <algorithm>
#include <cmath>

namespace streamop {

GkQuantileSketch::GkQuantileSketch(double eps) : eps_(eps) {
  if (eps_ <= 0.0) eps_ = 1e-4;
  if (eps_ > 0.5) eps_ = 0.5;
}

void GkQuantileSketch::Insert(double v) {
  // Locate the first entry with value >= v.
  auto it = std::lower_bound(
      tuples_.begin(), tuples_.end(), v,
      [](const Entry& e, double val) { return e.v < val; });

  Entry entry;
  entry.v = v;
  entry.g = 1;
  if (it == tuples_.begin() || it == tuples_.end()) {
    // New minimum or maximum: exact rank (delta = 0).
    entry.delta = 0;
  } else {
    // Interior insert: delta = floor(2 eps n) - 1 (GK §2.1), so the new
    // tuple's own g + delta stays within the invariant.
    const uint64_t band =
        static_cast<uint64_t>(std::floor(2.0 * eps_ * static_cast<double>(n_)));
    entry.delta = band > 0 ? band - 1 : 0;
  }
  tuples_.insert(it, entry);
  ++n_;

  // Compress periodically (every 1/(2 eps) insertions, the GK schedule).
  if (++since_compress_ >= static_cast<uint64_t>(1.0 / (2.0 * eps_))) {
    since_compress_ = 0;
    Compress();
  }
}

void GkQuantileSketch::Compress() {
  if (tuples_.size() < 3) return;
  const uint64_t threshold =
      static_cast<uint64_t>(std::floor(2.0 * eps_ * static_cast<double>(n_)));
  std::vector<Entry> out;
  out.reserve(tuples_.size());
  out.push_back(tuples_.front());
  // Greedily merge entry i into its successor when the combined g stays
  // within the invariant. The last entry (maximum) is always kept.
  for (size_t i = 1; i + 1 < tuples_.size(); ++i) {
    const Entry& cur = tuples_[i];
    const Entry& next = tuples_[i + 1];
    if (cur.g + next.g + next.delta <= threshold) {
      // Merge cur into next: its gap transfers to the successor.
      tuples_[i + 1].g += cur.g;
    } else {
      out.push_back(cur);
    }
  }
  out.push_back(tuples_.back());
  tuples_ = std::move(out);
}

double GkQuantileSketch::Query(double phi) const {
  if (tuples_.empty()) return 0.0;
  if (phi < 0.0) phi = 0.0;
  if (phi > 1.0) phi = 1.0;
  const double target = phi * static_cast<double>(n_);
  // Return the entry whose rank-interval midpoint is closest to the target:
  // with the invariant g + delta <= 2 eps n this answers within eps * n,
  // and it degrades gracefully (nearest candidate) rather than returning a
  // merely-intersecting entry whose true rank may be slack + delta away.
  uint64_t rmin = 0;
  double best_v = tuples_.front().v;
  double best_dist = -1.0;
  for (size_t i = 0; i < tuples_.size(); ++i) {
    rmin += tuples_[i].g;
    const double mid =
        static_cast<double>(rmin) + static_cast<double>(tuples_[i].delta) / 2.0;
    const double dist = std::abs(mid - target);
    if (best_dist < 0.0 || dist < best_dist) {
      best_dist = dist;
      best_v = tuples_[i].v;
    }
    if (static_cast<double>(rmin) > target && dist > best_dist) break;
  }
  return best_v;
}

}  // namespace streamop
