#include "sampling/reservoir.h"

namespace streamop {

ReservoirControl::ReservoirControl(uint64_t n, Mode mode, uint64_t seed)
    : n_(n), mode_(mode), seed_(seed), rng_(seed) {
  Reset();
}

void ReservoirControl::Reset() {
  rng_ = Pcg64(seed_);
  t_ = 0;
  next_admit_ = 0;
  w_ = 0.0;
  if (mode_ == Mode::kSkip) {
    // The first n records are always admitted.
    next_admit_ = 0;
    w_ = std::exp(std::log(rng_.NextDoubleOpen()) / static_cast<double>(n_));
  }
}

void ReservoirControl::ScheduleNextSkip() {
  // Algorithm L [Li 1994], the modern constant-expected-time realization of
  // Vitter's skip idea: after an admission at position t, the next admission
  // is t + floor(log(u)/log(1-w)) + 1, and w *= u'^(1/n).
  double u = rng_.NextDoubleOpen();
  double denom = std::log1p(-w_);
  double jump;
  if (denom >= 0.0 || !std::isfinite(denom)) {
    jump = 0.0;  // w_ ~ 1: admit next record
  } else {
    jump = std::floor(std::log(u) / denom);
    if (jump > 1e18 || !std::isfinite(jump)) jump = 1e18;
  }
  // ScheduleNextSkip runs right after an admission at index t_-1, so the
  // next admission lands at (t_-1) + jump + 1 = t_ + jump.
  next_admit_ = t_ + static_cast<uint64_t>(jump);
  w_ *= std::exp(std::log(rng_.NextDoubleOpen()) / static_cast<double>(n_));
}

bool ReservoirControl::Offer() {
  uint64_t pos = t_;
  ++t_;
  if (pos < n_) {
    if (mode_ == Mode::kSkip && pos == n_ - 1) {
      // Warm-up complete: schedule the first real skip.
      next_admit_ = 0;  // will be overwritten
      ScheduleNextSkip();
    }
    return true;
  }
  if (mode_ == Mode::kPerRecord) {
    // Admit with probability n/(t) where t = records seen including this.
    return rng_.NextBounded(t_) < n_;
  }
  if (pos == next_admit_) {
    ScheduleNextSkip();
    return true;
  }
  return false;
}

}  // namespace streamop
