// Reservoir sampling [Vitter, TOMS 1985]:
//
//   * ReservoirSampler<T> — the exact fixed-size uniform sample, with two
//     admission strategies: per-record (Algorithm R) and skip-based
//     (Algorithm L-style geometric jumps, the "constant expected time"
//     variant §4.1 refers to);
//   * CandidateReservoir<T> — the paper's operator-friendly variant: admit
//     candidates by skips into a buffer of capacity T*n (10 < T < 40), and
//     randomly subsample down to n whenever the buffer overflows and at the
//     window boundary. This is the shape the rsample()/rsdo_clean()/
//     rsclean_with()/rsfinal_clean() stateful functions implement.

#ifndef STREAMOP_SAMPLING_RESERVOIR_H_
#define STREAMOP_SAMPLING_RESERVOIR_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/random.h"

namespace streamop {

/// Skip-sequence generator shared by the exact sampler and the candidate
/// variant: decides, for a stream position t (records seen so far), whether
/// the next record enters a size-n reservoir.
class ReservoirControl {
 public:
  enum class Mode {
    kPerRecord,  // Algorithm R: admit record t+1 with probability n/(t+1)
    kSkip,       // Algorithm L: geometric jumps, O(n log(N/n)) admissions
  };

  ReservoirControl(uint64_t n, Mode mode, uint64_t seed);

  /// Called once per stream record; true if this record is admitted.
  bool Offer();

  /// Index (0-based) of the slot the admitted record should replace,
  /// uniform over [0, n). Valid to call once after Offer() returned true.
  uint64_t ReplaceIndex() { return rng_.NextBounded(n_); }

  uint64_t records_seen() const { return t_; }
  void Reset();

  /// Checkpoint: the full skip-sequence position including the RNG stream,
  /// so a restored control admits exactly the records the original would.
  void SerializeTo(ByteWriter& w) const {
    w.U64(n_);
    w.U8(static_cast<uint8_t>(mode_));
    w.U64(seed_);
    rng_.SerializeTo(w);
    w.U64(t_);
    w.U64(next_admit_);
    w.F64(w_);
  }
  void RestoreFrom(ByteReader& r) {
    n_ = r.U64();
    mode_ = static_cast<Mode>(r.U8());
    seed_ = r.U64();
    rng_.RestoreFrom(r);
    t_ = r.U64();
    next_admit_ = r.U64();
    w_ = r.F64();
  }

 private:
  void ScheduleNextSkip();

  uint64_t n_;
  Mode mode_;
  uint64_t seed_;
  Pcg64 rng_;
  uint64_t t_ = 0;          // records seen
  uint64_t next_admit_ = 0;  // (skip mode) absolute index of next admission
  double w_ = 0.0;           // Algorithm L state
};

/// Exact fixed-size uniform reservoir sample.
template <typename T>
class ReservoirSampler {
 public:
  ReservoirSampler(uint64_t n, uint64_t seed,
                   ReservoirControl::Mode mode = ReservoirControl::Mode::kPerRecord)
      : n_(n), control_(n, mode, seed) {}

  void Offer(const T& item) {
    if (sample_.size() < n_) {
      sample_.push_back(item);
      control_.Offer();  // keep the seen-count in sync
      return;
    }
    if (control_.Offer()) {
      sample_[control_.ReplaceIndex()] = item;
    }
  }

  const std::vector<T>& sample() const { return sample_; }
  uint64_t records_seen() const { return control_.records_seen(); }

  void Reset() {
    sample_.clear();
    control_.Reset();
  }

  void SerializeTo(ByteWriter& w) const {
    w.U64(n_);
    control_.SerializeTo(w);
    SerdeWriteVector(w, sample_);
  }
  void RestoreFrom(ByteReader& r) {
    n_ = r.U64();
    control_.RestoreFrom(r);
    SerdeReadVector(r, &sample_);
  }

 private:
  uint64_t n_;
  ReservoirControl control_;
  std::vector<T> sample_;
};

/// The candidate-buffer reservoir of §4.1/§6.6: admitted records append to
/// a candidate buffer; when the buffer exceeds T*n, a cleaning phase keeps
/// n candidates chosen uniformly; the window-final sample is again a
/// uniform choice of n candidates.
///
/// CAVEAT (measured in this repo; see EXPERIMENTS.md): because admission
/// probability decays like n/t but candidates are never *replaced* — only
/// occasionally subsampled — this deferred-replacement scheme is biased
/// toward early stream positions (~3x over-representation of the first
/// decile at N/n = 100). It reproduces the paper's operator formulation
/// faithfully; use BackoffReservoir when exact uniformity matters.
template <typename T>
class CandidateReservoir {
 public:
  struct Stats {
    uint64_t cleaning_phases = 0;
    uint64_t candidates_admitted = 0;
  };

  CandidateReservoir(uint64_t n, double tolerance, uint64_t seed)
      : n_(n),
        capacity_(static_cast<uint64_t>(tolerance * static_cast<double>(n))),
        control_(n, ReservoirControl::Mode::kSkip, seed),
        rng_(seed ^ 0x5bf0361cull) {}

  void Offer(const T& item) {
    if (control_.Offer()) {
      candidates_.push_back(item);
      ++stats_.candidates_admitted;
      if (candidates_.size() > capacity_) Clean();
    }
  }

  /// Finishes the window: subsample to n, return the sample, reset.
  std::vector<T> EndWindow() {
    if (candidates_.size() > n_) SubsampleTo(n_);
    std::vector<T> out = std::move(candidates_);
    candidates_.clear();
    control_.Reset();
    Stats s = stats_;
    last_stats_ = s;
    stats_ = Stats{};
    return out;
  }

  const std::vector<T>& candidates() const { return candidates_; }
  const Stats& stats() const { return stats_; }
  const Stats& last_window_stats() const { return last_stats_; }

  void SerializeTo(ByteWriter& w) const {
    w.U64(n_);
    w.U64(capacity_);
    control_.SerializeTo(w);
    rng_.SerializeTo(w);
    SerdeWriteVector(w, candidates_);
    w.U64(stats_.cleaning_phases);
    w.U64(stats_.candidates_admitted);
    w.U64(last_stats_.cleaning_phases);
    w.U64(last_stats_.candidates_admitted);
  }
  void RestoreFrom(ByteReader& r) {
    n_ = r.U64();
    capacity_ = r.U64();
    control_.RestoreFrom(r);
    rng_.RestoreFrom(r);
    SerdeReadVector(r, &candidates_);
    stats_.cleaning_phases = r.U64();
    stats_.candidates_admitted = r.U64();
    last_stats_.cleaning_phases = r.U64();
    last_stats_.candidates_admitted = r.U64();
  }

 private:
  void Clean() {
    ++stats_.cleaning_phases;
    SubsampleTo(n_);
  }

  // Partial Fisher-Yates: uniformly keep k of the current candidates.
  void SubsampleTo(uint64_t k) {
    if (candidates_.size() <= k) return;
    for (uint64_t i = 0; i < k; ++i) {
      uint64_t j = i + rng_.NextBounded(candidates_.size() - i);
      std::swap(candidates_[i], candidates_[j]);
    }
    candidates_.resize(k);
  }

  uint64_t n_;
  uint64_t capacity_;
  ReservoirControl control_;
  Pcg64 rng_;
  std::vector<T> candidates_;
  Stats stats_;
  Stats last_stats_;
};

/// An *exactly uniform* fixed-size sampler that still fits the operator's
/// admit/clean template (no in-place replacement needed): records are
/// admitted with a constant probability p (initially 1); when the candidate
/// buffer exceeds T*n, p is halved and every candidate survives a fair coin
/// flip. All records then share inclusion probability p_final before the
/// window-final uniform subsample to n — so the final sample is an exact
/// uniform n-subset. This is the classic Bernoulli-backoff reservoir and
/// the statistically sound alternative to CandidateReservoir.
template <typename T>
class BackoffReservoir {
 public:
  struct Stats {
    uint64_t cleaning_phases = 0;
    uint64_t candidates_admitted = 0;
  };

  BackoffReservoir(uint64_t n, double tolerance, uint64_t seed)
      : n_(n),
        capacity_(static_cast<uint64_t>(tolerance * static_cast<double>(n))),
        rng_(seed ^ 0x9d2c5680ull) {}

  void Offer(const T& item) {
    if (p_ < 1.0 && !rng_.NextBernoulli(p_)) return;
    candidates_.push_back(item);
    ++stats_.candidates_admitted;
    if (candidates_.size() > capacity_) Halve();
  }

  /// Finishes the window: uniform subsample to n, return, reset.
  std::vector<T> EndWindow() {
    if (candidates_.size() > n_) SubsampleTo(n_);
    std::vector<T> out = std::move(candidates_);
    candidates_.clear();
    p_ = 1.0;
    Stats s = stats_;
    last_stats_ = s;
    stats_ = Stats{};
    return out;
  }

  double admission_probability() const { return p_; }
  const std::vector<T>& candidates() const { return candidates_; }
  const Stats& stats() const { return stats_; }
  const Stats& last_window_stats() const { return last_stats_; }

  void SerializeTo(ByteWriter& w) const {
    w.U64(n_);
    w.U64(capacity_);
    rng_.SerializeTo(w);
    w.F64(p_);
    SerdeWriteVector(w, candidates_);
    w.U64(stats_.cleaning_phases);
    w.U64(stats_.candidates_admitted);
    w.U64(last_stats_.cleaning_phases);
    w.U64(last_stats_.candidates_admitted);
  }
  void RestoreFrom(ByteReader& r) {
    n_ = r.U64();
    capacity_ = r.U64();
    rng_.RestoreFrom(r);
    p_ = r.F64();
    SerdeReadVector(r, &candidates_);
    stats_.cleaning_phases = r.U64();
    stats_.candidates_admitted = r.U64();
    last_stats_.cleaning_phases = r.U64();
    last_stats_.candidates_admitted = r.U64();
  }

 private:
  void Halve() {
    ++stats_.cleaning_phases;
    p_ *= 0.5;
    std::vector<T> kept;
    kept.reserve(candidates_.size() / 2 + 8);
    for (T& c : candidates_) {
      if (rng_.NextBernoulli(0.5)) kept.push_back(std::move(c));
    }
    candidates_ = std::move(kept);
  }

  void SubsampleTo(uint64_t k) {
    for (uint64_t i = 0; i < k; ++i) {
      uint64_t j = i + rng_.NextBounded(candidates_.size() - i);
      std::swap(candidates_[i], candidates_[j]);
    }
    candidates_.resize(k);
  }

  uint64_t n_;
  uint64_t capacity_;
  Pcg64 rng_;
  double p_ = 1.0;
  std::vector<T> candidates_;
  Stats stats_;
  Stats last_stats_;
};

}  // namespace streamop

#endif  // STREAMOP_SAMPLING_RESERVOIR_H_
