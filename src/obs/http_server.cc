#include "obs/http_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace streamop {
namespace obs {

namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

// `extra_headers`, when non-empty, is appended verbatim before the blank
// line; each header must carry its own trailing CRLF.
std::string MakeResponse(int status, const char* reason,
                         const char* content_type, std::string body,
                         const char* extra_headers = "") {
  char head[384];
  std::snprintf(head, sizeof(head),
                "HTTP/1.1 %d %s\r\n"
                "Content-Type: %s\r\n"
                "Content-Length: %zu\r\n"
                "Connection: close\r\n"
                "%s"
                "\r\n",
                status, reason, content_type, body.size(), extra_headers);
  std::string out(head);
  out += body;
  return out;
}

// Machine-parseable error body: {"error": {"code": N, "message": "..."}}.
// `detail_json`, when non-empty, is spliced in as extra key/value pairs.
std::string JsonError(int status, const char* reason, const char* message,
                      const std::string& detail_json = "",
                      const char* extra_headers = "") {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "{\"error\": {\"code\": %d, \"message\": \"%s\"",
                status, message);
  std::string body(buf);
  if (!detail_json.empty()) {
    body += ", ";
    body += detail_json;
  }
  body += "}}\n";
  return MakeResponse(status, reason, "application/json", std::move(body),
                      extra_headers);
}

std::string NotFound() {
  return JsonError(404, "Not Found", "not found",
                   "\"endpoints\": [\"/metrics\", \"/metrics.json\", "
                   "\"/traces\", \"/spans\", \"/spans/window/{seq}\", "
                   "\"/profile\", \"/exemplars\", \"/windows\", "
                   "\"/timeseries\", \"/alerts\", \"/forensics\", "
                   "\"/dashboard\", \"/healthz\"]");
}

std::string BadRequest(const char* message = "bad request") {
  return JsonError(400, "Bad Request", message);
}

// Value of `key` in a query string ("" when absent or valueless). No
// %-decoding: the introspection endpoints take only integers and keywords.
std::string_view QueryParam(std::string_view query, std::string_view key) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string_view::npos) amp = query.size();
    std::string_view pair = query.substr(pos, amp - pos);
    const size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      return pair.substr(eq + 1);
    }
    pos = amp + 1;
  }
  return {};
}

// Strict non-empty decimal uint64 parse (no sign, no trailing junk).
bool ParseU64(std::string_view s, uint64_t* out) {
  if (s.empty() || s.size() > 20) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

// %-decoding for /timeseries?metric=: series keys carry '{', '}', '"' and
// '=' which well-behaved clients percent-encode. '+' means space.
std::string UrlDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out += ' ';
    } else if (s[i] == '%' && i + 2 < s.size()) {
      auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        return -1;
      };
      const int hi = hex(s[i + 1]);
      const int lo = hex(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>(hi * 16 + lo);
        i += 2;
      } else {
        out += s[i];
      }
    } else {
      out += s[i];
    }
  }
  return out;
}

// The live dashboard: one dependency-free self-refreshing page. Sparklines
// are inline SVG built from /timeseries; the alert board polls /alerts.
constexpr const char kDashboardHtml[] = R"HTML(<!doctype html>
<html><head><meta charset="utf-8"><title>streamop dashboard</title>
<style>
body{font-family:monospace;background:#111;color:#ddd;margin:16px}
h1{font-size:16px} h2{font-size:13px;color:#9ad;margin:12px 0 4px}
table{border-collapse:collapse;font-size:12px}
td,th{padding:2px 8px;border-bottom:1px solid #333;text-align:left}
.firing{color:#f55;font-weight:bold}.pending{color:#fa0}.inactive{color:#5a5}
.critical{background:#400}.warning{background:#430}.info{background:#224}
svg{vertical-align:middle}
.spark{stroke:#6cf;stroke-width:1;fill:none}
.muted{color:#777}
</style></head><body>
<h1>streamop flight deck <span id=ts class=muted></span></h1>
<h2>alerts</h2><table id=alerts></table>
<h2>headline series (rate/s for counters)</h2><table id=series></table>
<script>
const HEADLINE=[/^streamop_operator_tuples_total/,/^streamop_runtime_shed_fraction/,
 /^streamop_ring_push_failures_total/,/^streamop_ingest_gap_records_total/,
 /^streamop_operator_late_tuples_total/,/^streamop_checkpoint_age_windows/,
 /^streamop_quality_sum_ci95/,/^streamop_operator_rows_out_total/];
function spark(pts){
 if(!pts.length)return'';
 const w=180,h=24,vs=pts.map(p=>p[2]!==null&&p.length>2?p[2]:p[1]);
 const mx=Math.max(...vs),mn=Math.min(...vs),rg=(mx-mn)||1;
 const xy=vs.map((v,i)=>`${(i*w/Math.max(1,vs.length-1)).toFixed(1)},`+
   `${(h-2-(v-mn)/rg*(h-4)).toFixed(1)}`).join(' ');
 return`<svg width=${w} height=${h}><polyline class=spark points="${xy}"/></svg>`+
   `<span class=muted> ${vs[vs.length-1].toPrecision(4)}</span>`;
}
async function tick(){
 try{
  const al=await(await fetch('/alerts')).json();
  let h='<tr><th>rule</th><th>severity</th><th>state</th><th>value</th><th>threshold</th><th>fired</th></tr>';
  (al.rules||[]).forEach(r=>{
   h+=`<tr class=${r.severity}><td>${r.name}</td><td>${r.severity}</td>`+
      `<td class=${r.state}>${r.state}</td><td>${r.value===null?'-':r.value}</td>`+
      `<td>${r.threshold}</td><td>${r.times_fired}</td></tr>`;});
  document.getElementById('alerts').innerHTML=h;
  const ls=await(await fetch('/timeseries')).json();
  const keys=(ls.series||[]).map(s=>s.key)
    .filter(k=>HEADLINE.some(re=>re.test(k))).slice(0,16);
  let sh='<tr><th>series</th><th>last 60s</th></tr>';
  for(const k of keys){
   const r=await(await fetch('/timeseries?metric='+encodeURIComponent(k)+
     '&range=60')).json();
   const s=(r.series||[])[0];
   if(!s)continue;
   const pts=s.kind==='counter'?s.points.map(p=>[p[0],p[2],p[2]]):s.points;
   sh+=`<tr><td>${k}</td><td>${spark(pts)}</td></tr>`;
  }
  document.getElementById('series').innerHTML=sh;
  document.getElementById('ts').textContent=
    '· '+new Date().toLocaleTimeString()+(ls.enabled===false?' (timeseries disabled)':'');
 }catch(e){document.getElementById('ts').textContent='· fetch error: '+e;}
}
tick();setInterval(tick,2000);
</script></body></html>
)HTML";

}  // namespace

HttpServer::HttpServer(HttpServerOptions options)
    : options_(std::move(options)) {
  if (options_.registry == nullptr) options_.registry = &MetricRegistry::Default();
  if (options_.trace_ring == nullptr) options_.trace_ring = &TraceRing::Default();
  if (options_.quality_ring == nullptr) {
    options_.quality_ring = &QualityRing::Default();
  }
  if (options_.span_ring == nullptr) options_.span_ring = &SpanRing::Default();
  if (options_.profiler == nullptr) options_.profiler = &Profiler::Default();
  if (options_.exemplars == nullptr) {
    options_.exemplars = &ExemplarStore::Default();
  }
  if (options_.max_connections < 1) options_.max_connections = 1;
  if (options_.max_request_bytes < 64) options_.max_request_bytes = 64;
}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::AlreadyExists("http server already running");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal("socket(): " + std::string(strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status st = Status::Internal("bind(" + options_.bind_address + ":" +
                                 std::to_string(options_.port) +
                                 "): " + strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 16) < 0) {
    Status st = Status::Internal("listen(): " + std::string(strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  // Resolve the ephemeral port before the thread starts so callers can
  // read port() immediately after Start() returns.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_.store(ntohs(bound.sin_port), std::memory_order_release);
  }
  if (!SetNonBlocking(listen_fd_)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("fcntl(O_NONBLOCK) failed on listen socket");
  }

  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread(&HttpServer::ServeLoop, this);
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_.load(std::memory_order_acquire) && !thread_.joinable()) {
    return;
  }
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
}

void HttpServer::CloseAll() {
  for (Conn& c : conns_) {
    if (c.fd >= 0) ::close(c.fd);
  }
  conns_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpServer::AcceptNew(int64_t now_ms) {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) break;  // EAGAIN / EWOULDBLOCK: drained
    if (!SetNonBlocking(fd)) {
      ::close(fd);
      continue;
    }
    if (conns_.size() >=
        static_cast<size_t>(options_.max_connections)) {
      // Over the cap: answer 503 with a best-effort single send. The
      // socket buffer always holds this short response, so no state
      // machine is needed for the reject path.
      connections_rejected_.fetch_add(1, std::memory_order_relaxed);
      // Retry-After: the pressure is scrape concurrency, not load — a
      // one-second backoff is always enough for a slot to free up.
      std::string resp = JsonError(503, "Service Unavailable",
                                   "connection limit reached", "",
                                   "Retry-After: 1\r\n");
      (void)::send(fd, resp.data(), resp.size(), MSG_NOSIGNAL);
      ::close(fd);
      continue;
    }
    Conn c;
    c.fd = fd;
    c.last_activity_ms = now_ms;
    conns_.push_back(std::move(c));
  }
}

std::string HttpServer::HandleRequest(std::string_view head) {
  // Request line: METHOD SP TARGET SP VERSION CRLF ...
  size_t eol = head.find("\r\n");
  if (eol == std::string_view::npos) eol = head.find('\n');
  std::string_view line =
      eol == std::string_view::npos ? head : head.substr(0, eol);
  size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return BadRequest();
  size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return BadRequest();
  std::string_view method = line.substr(0, sp1);
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string_view version = line.substr(sp2 + 1);
  if (version.substr(0, 5) != "HTTP/") return BadRequest();
  if (method != "GET" && method != "HEAD") {
    return JsonError(405, "Method Not Allowed", "only GET is supported");
  }
  // Split off the query string; /profile and /spans take parameters.
  std::string_view query;
  size_t q = target.find('?');
  if (q != std::string_view::npos) {
    query = target.substr(q + 1);
    target = target.substr(0, q);
  }

  requests_served_.fetch_add(1, std::memory_order_relaxed);
  if (target == "/metrics") {
    return MakeResponse(200, "OK",
                        "text/plain; version=0.0.4; charset=utf-8",
                        options_.registry->ToPrometheus());
  }
  if (target == "/metrics.json") {
    return MakeResponse(200, "OK", "application/json",
                        options_.registry->ToJson());
  }
  if (target == "/traces") {
    return MakeResponse(200, "OK", "application/json",
                        options_.trace_ring->ToChromeTraceJson());
  }
  if (target == "/spans") {
    return MakeResponse(200, "OK", "application/json",
                        QueryParam(query, "format") == "chrome"
                            ? options_.span_ring->ToChromeTraceJson()
                            : options_.span_ring->ToJson());
  }
  constexpr std::string_view kSpansWindow = "/spans/window/";
  if (target.substr(0, kSpansWindow.size()) == kSpansWindow) {
    uint64_t seq = 0;
    if (!ParseU64(target.substr(kSpansWindow.size()), &seq)) {
      return BadRequest("bad window sequence; want /spans/window/{seq}");
    }
    return MakeResponse(200, "OK", "application/json",
                        options_.span_ring->WindowJson(seq));
  }
  if (target == "/profile") {
    if (QueryParam(query, "format") == "phases") {
      return MakeResponse(200, "OK", "application/json",
                          options_.profiler->PhasesJson());
    }
    uint64_t seconds = 0;  // 0 = every retained sample
    const std::string_view s = QueryParam(query, "seconds");
    if (!s.empty() && !ParseU64(s, &seconds)) {
      return BadRequest("bad seconds; want /profile?seconds=N");
    }
    // Export only: symbolization and aggregation run on this serving
    // thread against the always-on sample ring — never blocking for N
    // seconds, never touching the pipeline.
    return MakeResponse(200, "OK", "text/plain; charset=utf-8",
                        options_.profiler->Folded(seconds));
  }
  if (target == "/exemplars") {
    return MakeResponse(200, "OK", "application/json",
                        options_.exemplars->ToJson());
  }
  if (target == "/windows") {
    return MakeResponse(200, "OK", "application/json",
                        options_.quality_ring->ToJson());
  }
  if (target == "/timeseries") {
    if (options_.timeseries == nullptr) {
      return MakeResponse(200, "OK", "application/json",
                          "{\"enabled\": false}\n");
    }
    const std::string metric = UrlDecode(QueryParam(query, "metric"));
    if (metric.empty()) {
      return MakeResponse(200, "OK", "application/json",
                          options_.timeseries->SeriesListJson());
    }
    uint64_t range_s = 60;
    const std::string_view r = QueryParam(query, "range");
    if (!r.empty() && !ParseU64(r, &range_s)) {
      return BadRequest("bad range; want /timeseries?metric=...&range=N");
    }
    return MakeResponse(
        200, "OK", "application/json",
        options_.timeseries->RangeJson(metric,
                                       static_cast<double>(range_s)));
  }
  if (target == "/alerts") {
    if (options_.alerts == nullptr) {
      return MakeResponse(200, "OK", "application/json",
                          "{\"enabled\": false}\n");
    }
    return MakeResponse(200, "OK", "application/json",
                        options_.alerts->ToJson());
  }
  if (target == "/forensics") {
    std::string body = "{\"enabled\": ";
    const FlightRecorder* fr = options_.flight_recorder;
    body += fr != nullptr && fr->enabled() ? "true" : "false";
    if (fr != nullptr && fr->enabled()) {
      body += ", \"segment\": \"" + fr->segment_path() + "\"";
      body += ", \"spills\": " + std::to_string(fr->spills());
      body += ", \"spill_failures\": " + std::to_string(fr->spill_failures());
      body += ", \"last_spill_ms\": " +
              std::to_string(fr->last_spill_ns() / 1000000);
    }
    // The pre-crash report of the previous process, when one was loaded.
    body += ", \"report\": ";
    const std::string report =
        options_.forensics_json ? options_.forensics_json() : "";
    body += report.empty() ? "null" : report;
    body += "}\n";
    return MakeResponse(200, "OK", "application/json", std::move(body));
  }
  if (target == "/dashboard") {
    return MakeResponse(200, "OK", "text/html; charset=utf-8",
                        kDashboardHtml);
  }
  if (target == "/healthz") {
    bool healthy = options_.healthy ? options_.healthy() : true;
    std::string body = options_.health_json ? options_.health_json()
                                            : "{\"status\": \"ok\"}\n";
    // A critical alert (or watchdog verdict) flips /healthz to 503;
    // Retry-After tells load balancers to probe again rather than eject
    // the instance permanently.
    return healthy
               ? MakeResponse(200, "OK", "application/json", std::move(body))
               : MakeResponse(503, "Service Unavailable", "application/json",
                              std::move(body), "Retry-After: 2\r\n");
  }
  return NotFound();
}

bool HttpServer::OnReadable(Conn& c, int64_t now_ms) {
  char buf[2048];
  for (;;) {
    ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      c.last_activity_ms = now_ms;
      c.in.append(buf, static_cast<size_t>(n));
      if (c.in.size() > options_.max_request_bytes) {
        c.out = BadRequest();
        c.writing = true;
        return true;
      }
      continue;
    }
    if (n == 0) return false;  // peer closed before a full request
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;  // hard error
  }
  // Serve as soon as the header block is complete; request bodies are not
  // supported (GET only).
  size_t end = c.in.find("\r\n\r\n");
  if (end == std::string::npos) end = c.in.find("\n\n");
  if (end != std::string::npos) {
    c.out = HandleRequest(std::string_view(c.in).substr(0, end));
    c.writing = true;
  }
  return true;
}

bool HttpServer::OnWritable(Conn& c) {
  while (c.out_off < c.out.size()) {
    ssize_t n = ::send(c.fd, c.out.data() + c.out_off,
                       c.out.size() - c.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      c.out_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return false;  // fully written: Connection: close
}

void HttpServer::ServeLoop() {
  std::vector<pollfd> pfds;
  while (!stop_.load(std::memory_order_acquire)) {
    pfds.clear();
    pfds.push_back(pollfd{listen_fd_, POLLIN, 0});
    for (const Conn& c : conns_) {
      pfds.push_back(
          pollfd{c.fd, static_cast<short>(c.writing ? POLLOUT : POLLIN), 0});
    }
    // 100ms cap keeps Stop() responsive without busy-waiting.
    int rc = ::poll(pfds.data(), pfds.size(), 100);
    const int64_t now_ms = NowMs();
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }

    // Scan the connections that were actually polled, with conns_ held
    // stable so index i stays aligned with pfds[i + 1]; dead sockets are
    // only marked here and compacted below. Accepting happens last —
    // erasing or accepting mid-scan would pair conns with the wrong (or
    // nonexistent) pollfd entries.
    const size_t npolled = conns_.size();
    for (size_t i = 0; i < npolled; ++i) {
      Conn& c = conns_[i];
      const short rev = pfds[i + 1].revents;
      bool keep = true;
      if (rev & (POLLERR | POLLHUP | POLLNVAL)) {
        keep = false;
      } else if (c.writing && (rev & POLLOUT)) {
        keep = OnWritable(c);
      } else if (!c.writing && (rev & POLLIN)) {
        keep = OnReadable(c, now_ms);
      } else if (now_ms - c.last_activity_ms > options_.idle_timeout_ms) {
        keep = false;  // reap idle sockets so slots cannot be pinned
      }
      if (!keep) {
        ::close(c.fd);
        c.fd = -1;
      }
    }
    conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                [](const Conn& c) { return c.fd < 0; }),
                 conns_.end());

    if (pfds[0].revents & POLLIN) AcceptNew(now_ms);
  }
  CloseAll();
}

Result<std::string> HttpGet(uint16_t port, const std::string& path,
                            int timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal("socket(): " + std::string(strerror(errno)));
  }
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Status::Internal("connect(127.0.0.1:" + std::to_string(port) +
                                 "): " + strerror(errno));
    ::close(fd);
    return st;
  }
  std::string req = "GET " + path +
                    " HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n";
  size_t off = 0;
  while (off < req.size()) {
    ssize_t n = ::send(fd, req.data() + off, req.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      ::close(fd);
      return Status::IOError("send() failed");
    }
    off += static_cast<size_t>(n);
  }
  std::string resp;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      resp.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      ::close(fd);
      return Status::IOError("recv() timed out or failed");
    }
    break;  // EOF
  }
  ::close(fd);
  if (resp.empty()) return Status::IOError("empty response");
  return resp;
}

}  // namespace obs
}  // namespace streamop
