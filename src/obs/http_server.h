// Embedded introspection server: a dependency-free POSIX-socket HTTP/1.1
// endpoint that exposes the process's observability state while the
// pipeline runs.
//
//   GET /metrics             Prometheus text exposition (MetricRegistry)
//   GET /metrics.json        the same registry as JSON
//   GET /traces              chrome://tracing JSON from the TraceRing
//   GET /spans               window-lifecycle spans from the SpanRing
//                            (?format=chrome for chrome://tracing JSON)
//   GET /spans/window/{seq}  spans of one window lifecycle
//   GET /profile             folded-stack flamegraph text from the sampling
//                            profiler (?seconds=N limits the lookback;
//                            ?format=phases for phase-cycle JSON)
//   GET /exemplars           reservoir-sampled telemetry exemplars
//   GET /windows             recent WindowQualityReports (QualityRing)
//   GET /timeseries          series list; ?metric=&range= for point data
//                            from the metrics time-series ring
//   GET /alerts              alert board: rules, states, transition log
//   GET /forensics           flight-recorder status + the pre-crash report
//                            loaded on recovery (if any)
//   GET /dashboard           self-refreshing HTML: sparklines + alert board
//   GET /healthz             liveness + degradation (200 ok / 503 unhealthy,
//                            with Retry-After while critical alerts fire)
//
// Every error (400/404/405 and the connection-limit 503) carries a JSON
// body {"error": {"code", "message", ...}}; the connection-limit 503 adds
// Retry-After so well-behaved scrapers back off instead of hammering.
//
// Design constraints, in the spirit of DESIGN.md §7:
//  - Zero dependencies: raw sockets + poll(); no third-party HTTP stack.
//  - One dedicated thread; the pipeline threads never block on it. All
//    exported state is read through the same thread-safe snapshot paths
//    the file exporters use (registry mutex, ring snapshots).
//  - Bounded: at most `max_connections` concurrent sockets (extras get an
//    immediate 503), bounded request size (oversize -> 400), idle sockets
//    reaped after `idle_timeout_ms`.
//  - Clean shutdown: Stop() flips a flag the poll loop observes within
//    ~100ms, then joins; open connections are closed, the listen socket
//    released.
//
// The server itself stays available under STREAMOP_NO_STATS (the
// endpoints then serve empty registries/rings) — only the hot-path
// instrumentation compiles away.

#ifndef STREAMOP_OBS_HTTP_SERVER_H_
#define STREAMOP_OBS_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/status.h"
#include "obs/alerts.h"
#include "obs/exemplar.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/quality.h"
#include "obs/span.h"
#include "obs/timeseries.h"
#include "obs/trace_ring.h"

namespace streamop {
namespace obs {

struct HttpServerOptions {
  // 0 picks an ephemeral port; read it back via port() after Start().
  uint16_t port = 0;
  // Loopback by default: this is an introspection socket, not an ingress.
  std::string bind_address = "127.0.0.1";
  int max_connections = 32;
  size_t max_request_bytes = 8192;
  int idle_timeout_ms = 10000;

  // Data sources; null falls back to the process-wide defaults.
  MetricRegistry* registry = nullptr;
  TraceRing* trace_ring = nullptr;
  QualityRing* quality_ring = nullptr;
  SpanRing* span_ring = nullptr;
  Profiler* profiler = nullptr;
  ExemplarStore* exemplars = nullptr;

  // Time-series / alerting / forensics sources (obs/timeseries.h et al.).
  // These have no process-wide defaults: when null the corresponding
  // endpoints answer {"enabled": false} instead of 404, so dashboards can
  // probe capability without special-casing status codes.
  TimeSeries* timeseries = nullptr;
  AlertEngine* alerts = nullptr;
  FlightRecorder* flight_recorder = nullptr;
  // Pre-rendered forensic report of the previous (crashed) process, JSON;
  // served verbatim by /forensics when non-empty.
  std::function<std::string()> forensics_json;

  // /healthz body and status. Defaults: {"status": "ok"} and healthy.
  std::function<std::string()> health_json;
  std::function<bool()> healthy;
};

class HttpServer {
 public:
  explicit HttpServer(HttpServerOptions options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Binds, listens and launches the serving thread. Fails (kInternal) if
  // the port is taken or sockets are unavailable.
  Status Start();

  // Stops the serving thread and closes every socket. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  // The bound port (resolves ephemeral port 0); valid after Start().
  uint16_t port() const { return port_.load(std::memory_order_acquire); }

  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }
  uint64_t connections_rejected() const {
    return connections_rejected_.load(std::memory_order_relaxed);
  }

  // Pure request-line -> full HTTP response routing, exposed so tests can
  // exercise every route without sockets. `head` is everything up to and
  // including the blank line.
  std::string HandleRequest(std::string_view head);

 private:
  struct Conn {
    int fd = -1;
    std::string in;        // bytes received so far (bounded)
    std::string out;       // response being written
    size_t out_off = 0;
    bool writing = false;
    int64_t last_activity_ms = 0;
  };

  void ServeLoop();
  void AcceptNew(int64_t now_ms);
  // Returns false when the connection should be closed.
  bool OnReadable(Conn& c, int64_t now_ms);
  bool OnWritable(Conn& c);
  void CloseAll();

  HttpServerOptions options_;
  int listen_fd_ = -1;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::atomic<uint16_t> port_{0};
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> connections_rejected_{0};
  std::vector<Conn> conns_;
};

// Blocking loopback GET used by tests, the CI smoke step and the
// introspection benchmark: connects to 127.0.0.1:port, sends the request,
// returns the full raw response (status line + headers + body).
Result<std::string> HttpGet(uint16_t port, const std::string& path,
                            int timeout_ms = 2000);

}  // namespace obs
}  // namespace streamop

#endif  // STREAMOP_OBS_HTTP_SERVER_H_
