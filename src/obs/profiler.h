// Always-on sampling profiler: a SIGPROF timer-signal stack sampler plus
// per-phase cycle accounting for the operator's hot loop.
//
//  * Stack sampler: setitimer(ITIMER_PROF) delivers SIGPROF every 1/hz
//    seconds of consumed CPU time; the handler claims a fixed slot with one
//    relaxed fetch_add and captures a raw backtrace into it — no allocation,
//    no locks, oldest samples overwritten. Symbolization (dladdr) happens
//    only at export time, off the signal path. Folded(seconds) renders the
//    samples of the last N seconds as flamegraph.pl-compatible folded-stack
//    text ("frame;frame;frame count"), served at GET /profile?seconds=N.
//  * Phase cycles: the operator reads the TSC around each hot-loop phase
//    (batch select, admission, cleaning, flush, quality report) and
//    accumulates the deltas in plain per-operator pending fields, flushed
//    into this class's relaxed atomics once per batch — the same flush
//    discipline the pending metric counters use, so the steady state pays
//    two rdtsc reads per 512-tuple batch and no per-tuple work.
//
// Overhead: at the default 97 Hz a sample costs ~1-2us of handler time, or
// well under 0.1% of CPU — the profiler stays inside the observability
// layer's <= 2% A/B budget with everything else enabled (bench/micro_obs.cc
// measures exactly this). At most one profiler is active per process (the
// signal handler needs a process-wide target).
//
// STREAMOP_NO_STATS compiles the sampler and the cycle accounting out:
// Start() becomes a no-op, record sites constant-fold away, and the signal
// handler is not even compiled into the library (CI asserts the symbol is
// absent from NO_STATS builds).

#ifndef STREAMOP_OBS_PROFILER_H_
#define STREAMOP_OBS_PROFILER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "obs/metrics.h"

namespace streamop {
namespace obs {

/// TSC read for phase accounting: ~20 cycles on x86, far cheaper than a
/// clock_gettime vsyscall. Falls back to NowNanos() where no counter
/// register is available (the units are then nanoseconds, still additive).
inline uint64_t CycleNow() {
#if defined(__x86_64__) || defined(__i386__)
  uint32_t lo, hi;
  __asm__ __volatile__("rdtsc" : "=a"(lo), "=d"(hi));
  return (static_cast<uint64_t>(hi) << 32) | lo;
#elif defined(__aarch64__)
  uint64_t v;
  __asm__ __volatile__("mrs %0, cntvct_el0" : "=r"(v));
  return v;
#else
  return NowNanos();
#endif
}

class Profiler {
 public:
  /// Hot-loop phases, in lifecycle order. kDrain is the runtime's ring-pop
  /// + batch-build phase; the rest are the operator's.
  enum Phase : uint32_t {
    kDrain = 0,
    kBatchSelect,
    kAdmission,
    kClean,
    kFlush,
    kQuality,
    kNumPhases,
  };
  static const char* PhaseName(uint32_t phase);

  struct Options {
    int hz = 97;             // sample rate (co-prime with common tick rates)
    size_t capacity = 8192;  // retained samples (ring, overwrite-oldest)
  };

  /// Process-wide default profiler (the signal handler can only target one
  /// instance anyway).
  static Profiler& Default();

  Profiler();
  explicit Profiler(Options options);
  ~Profiler();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Installs the SIGPROF handler and starts the profiling timer.
  /// Idempotent; fails (kFailedPrecondition) if another Profiler instance
  /// is already active. No-op returning OK under STREAMOP_NO_STATS.
  Status Start();

  /// Stops the timer and uninstalls the handler. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  int hz() const { return options_.hz; }
  /// Adjusts the sample rate of a stopped profiler (lets callers tune the
  /// process-wide Default() before Start()); ignored while running.
  void set_hz(int hz) {
    if (!running() && hz > 0) options_.hz = hz;
  }
  size_t capacity() const { return options_.capacity; }

  /// Total samples ever taken (>= capacity means overwrites happened).
  uint64_t samples_recorded() const {
    return seq_.load(std::memory_order_relaxed);
  }

  /// Phase-cycle accounting. Enabled independently of the stack sampler
  /// (the operator checks phase_accounting_enabled() once per batch).
  void set_phase_accounting(bool on) {
    phase_accounting_.store(on, std::memory_order_relaxed);
  }
  bool phase_accounting_enabled() const {
    return kStatsEnabled && phase_accounting_.load(std::memory_order_relaxed);
  }
  void AddPhaseCycles(uint32_t phase, uint64_t cycles) {
    if constexpr (kStatsEnabled) {
      if (phase < kNumPhases && cycles > 0) {
        phase_cycles_[phase].fetch_add(cycles, std::memory_order_relaxed);
      }
    }
  }
  uint64_t phase_cycles(uint32_t phase) const {
    return phase < kNumPhases
               ? phase_cycles_[phase].load(std::memory_order_relaxed)
               : 0;
  }

  /// Folded-stack flamegraph text of the samples taken within the last
  /// `seconds` (0 = every retained sample), root frame first, one
  /// "frame;frame;frame count" line per distinct stack — pipe through
  /// flamegraph.pl. Symbolizes with dladdr; frames without a symbol render
  /// as "module+0xoff".
  std::string Folded(uint64_t seconds) const;

  /// Phase-cycle totals + sampler state as JSON (GET /profile?format=phases).
  std::string PhasesJson() const;

  /// Called by the signal handler; public only for that reason.
  void TakeSample();

 private:
  static constexpr int kMaxFrames = 32;

  // Fixed-size sample slot; fields individually atomic so exports never
  // race the handler (a torn sample is tolerated and filtered).
  struct Sample {
    std::atomic<uint64_t> ts_ns{0};
    std::atomic<int> depth{0};
    std::atomic<void*> frames[kMaxFrames];
  };

  Options options_;
  std::atomic<bool> running_{false};
  std::atomic<bool> phase_accounting_{false};
  std::atomic<uint64_t> seq_{0};
  std::unique_ptr<Sample[]> slots_;
  std::atomic<uint64_t> phase_cycles_[kNumPhases] = {};
};

}  // namespace obs
}  // namespace streamop

#endif  // STREAMOP_OBS_PROFILER_H_
