#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <unistd.h>

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/serde.h"

namespace streamop {
namespace obs {

namespace {

void AppendJsonEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
}

void AppendDouble(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

// Compact human form for table cells: 12345678 -> "12.3M".
std::string Humanize(double v) {
  char buf[32];
  const double a = std::fabs(v);
  if (a >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.1fG", v / 1e9);
  } else if (a >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fM", v / 1e6);
  } else if (a >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fk", v / 1e3);
  } else if (a >= 10 || v == std::floor(v)) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", v);
  }
  return buf;
}

Status WriteFileAtomic(const std::string& dir, const std::string& name,
                       const std::string& bytes) {
  const std::string tmp = dir + "/" + name + ".tmp";
  const std::string path = dir + "/" + name;
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal("flight recorder: open " + tmp + ": " +
                            std::strerror(errno));
  }
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n <= 0) {
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::Internal("flight recorder: write " + tmp + ": " +
                              std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::Internal("flight recorder: fsync " + tmp);
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::Internal("flight recorder: rename " + tmp);
  }
  const int dfd = ::open(dir.c_str(), O_RDONLY);
  if (dfd >= 0) {
    (void)::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

}  // namespace

size_t ForensicReport::fired_alerts() const {
  size_t n = 0;
  for (const AlertRow& a : alerts) {
    if (a.state == "firing") ++n;
  }
  return n;
}

FlightRecorder::FlightRecorder(FlightRecorderOptions options)
    : options_(options) {
  if (options_.spill_every_n_ticks == 0) options_.spill_every_n_ticks = 4;
  if (options_.last_k_intervals == 0) options_.last_k_intervals = 48;
  if (options_.span_ring == nullptr) options_.span_ring = &SpanRing::Default();
  // mkdir -p up front (checkpoint.cc idiom): a fresh --flight-dir must
  // work without the operator pre-creating it. A failure is left for
  // Spill() to surface as a spill_failure.
  if (!options_.dir.empty()) {
    size_t i = 0;
    while (i <= options_.dir.size()) {
      size_t j = options_.dir.find('/', i);
      if (j == std::string::npos) j = options_.dir.size();
      const std::string partial = options_.dir.substr(0, j);
      if (!partial.empty() && partial != "/" && partial != "." &&
          partial != "..") {
        if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) break;
      }
      i = j + 1;
    }
  }
}

std::string FlightRecorder::segment_path() const {
  return options_.dir + "/flight.seg";
}

void FlightRecorder::MaybeSpill(const TimeSeries& ts,
                                const AlertEngine* alerts, uint64_t tick) {
  const bool requested =
      spill_requested_.exchange(false, std::memory_order_acq_rel);
  if (!requested && (tick == 0 || tick % options_.spill_every_n_ticks != 0)) {
    return;
  }
  (void)Spill(ts, alerts);
}

Status FlightRecorder::Spill(const TimeSeries& ts, const AlertEngine* alerts) {
  if (!enabled()) return Status::OK();
  if constexpr (!kStatsEnabled) return Status::OK();
  std::lock_guard<std::mutex> lock(spill_mu_);
  ByteWriter w;
  w.U64(ts.scrapes());
  w.U64(ts.options().interval_ms);

  // Section 1: the pre-rendered last-K-intervals table. Rendering at
  // spill time (rates already computed) keeps Load() free of any
  // dependency on the live ring's encoding.
  std::vector<std::string> keys;
  std::vector<uint8_t> kinds;
  std::vector<std::vector<uint64_t>> times;
  std::vector<std::vector<double>> values;
  ts.VisitTail(options_.last_k_intervals,
               [&](const std::string& key, SeriesKind kind,
                   const std::vector<uint64_t>& t_ns,
                   const std::vector<double>& vals) {
                 keys.push_back(key);
                 kinds.push_back(static_cast<uint8_t>(kind));
                 times.push_back(t_ns);
                 values.push_back(vals);
               });
  w.U64(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    w.Str(keys[i]);
    w.U8(kinds[i]);
    w.U64(times[i].size());
    for (size_t k = 0; k < times[i].size(); ++k) {
      w.U64(times[i][k]);
      w.F64(values[i][k]);
    }
  }

  // Section 2: the alert board + transition log.
  if (alerts != nullptr) {
    w.Bool(true);
    const std::vector<AlertStatus> board = alerts->Snapshot();
    w.U64(board.size());
    for (const AlertStatus& st : board) {
      w.Str(st.rule.name);
      w.Str(AlertSeverityName(st.rule.severity));
      w.Str(AlertStateName(st.state));
      w.F64(st.last_value);
      w.F64(st.rule.threshold);
      w.U64(st.times_fired);
    }
    const std::vector<AlertTransition> log = alerts->Transitions();
    w.U64(log.size());
    for (const AlertTransition& t : log) {
      w.U64(t.t_ns);
      w.Str(t.rule);
      w.Str(AlertStateName(t.from));
      w.Str(AlertStateName(t.to));
      w.F64(t.value);
    }
  } else {
    w.Bool(false);
  }

  // Section 3: the newest spans (names resolved to strings — the ring
  // stores literal pointers that die with the process).
  {
    std::vector<SpanRecord> spans = options_.span_ring->Snapshot();
    const size_t n = std::min(spans.size(), options_.max_spans);
    w.U64(n);
    for (size_t i = spans.size() - n; i < spans.size(); ++i) {
      const SpanRecord& s = spans[i];
      w.Str(s.name != nullptr ? s.name : "?");
      w.U64(s.window_seq);
      w.U64(s.ts_ns);
      w.U64(s.dur_ns);
      w.U64(s.rows);
    }
  }

  const std::string& payload = w.data();
  std::string framed;
  framed.resize(kHeaderSize);
  const uint64_t now = NowNanos();
  const uint32_t magic = kMagic;
  const uint32_t version = kVersion;
  const uint64_t len = payload.size();
  const uint32_t payload_crc = Crc32c(payload.data(), payload.size());
  std::memcpy(&framed[0], &magic, 4);
  std::memcpy(&framed[4], &version, 4);
  std::memcpy(&framed[8], &now, 8);
  std::memcpy(&framed[16], &len, 8);
  std::memcpy(&framed[24], &payload_crc, 4);
  const uint32_t header_crc = Crc32c(framed.data(), 28);
  std::memcpy(&framed[28], &header_crc, 4);
  framed += payload;

  Status st = WriteFileAtomic(options_.dir, "flight.seg", framed);
  if (!st.ok()) {
    spill_failures_.fetch_add(1, std::memory_order_relaxed);
    return st;
  }
  spills_.fetch_add(1, std::memory_order_relaxed);
  last_spill_ns_.store(now, std::memory_order_relaxed);
  return Status::OK();
}

Result<ForensicReport> FlightRecorder::Load(const std::string& dir) {
  const std::string path = dir + "/flight.seg";
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("no flight segment at " + path);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string bytes = ss.str();
  if (bytes.size() < kHeaderSize) {
    return Status::IOError("flight segment truncated: " + path);
  }
  uint32_t magic = 0, version = 0, payload_crc = 0, header_crc = 0;
  uint64_t written_at = 0, len = 0;
  std::memcpy(&magic, &bytes[0], 4);
  std::memcpy(&version, &bytes[4], 4);
  std::memcpy(&written_at, &bytes[8], 8);
  std::memcpy(&len, &bytes[16], 8);
  std::memcpy(&payload_crc, &bytes[24], 4);
  std::memcpy(&header_crc, &bytes[28], 4);
  if (magic != kMagic) {
    return Status::IOError("flight segment bad magic: " + path);
  }
  if (version != kVersion) {
    return Status::IOError("flight segment unknown version " +
                            std::to_string(version));
  }
  if (Crc32c(bytes.data(), 28) != header_crc) {
    return Status::IOError("flight segment header CRC mismatch: " + path);
  }
  if (bytes.size() != kHeaderSize + len) {
    return Status::IOError("flight segment length mismatch: " + path);
  }
  if (Crc32c(bytes.data() + kHeaderSize, len) != payload_crc) {
    return Status::IOError("flight segment payload CRC mismatch: " + path);
  }

  ByteReader r(std::string_view(bytes).substr(kHeaderSize));
  ForensicReport rep;
  rep.path = path;
  rep.written_at_ns = written_at;
  rep.scrapes = r.U64();
  rep.interval_ms = r.U64();
  const uint64_t nseries = r.U64();
  for (uint64_t i = 0; i < nseries && r.ok(); ++i) {
    ForensicReport::SeriesRow row;
    row.key = r.Str();
    row.kind = r.U8();
    const uint64_t npts = r.U64();
    for (uint64_t k = 0; k < npts && r.ok(); ++k) {
      row.t_ns.push_back(r.U64());
      row.values.push_back(r.F64());
    }
    rep.rows.push_back(std::move(row));
  }
  if (r.Bool()) {
    const uint64_t nalerts = r.U64();
    for (uint64_t i = 0; i < nalerts && r.ok(); ++i) {
      ForensicReport::AlertRow a;
      a.name = r.Str();
      a.severity = r.Str();
      a.state = r.Str();
      a.value = r.F64();
      a.threshold = r.F64();
      a.times_fired = r.U64();
      rep.alerts.push_back(std::move(a));
    }
    const uint64_t nlog = r.U64();
    for (uint64_t i = 0; i < nlog && r.ok(); ++i) {
      ForensicReport::TransitionRow t;
      t.t_ns = r.U64();
      t.rule = r.Str();
      t.from = r.Str();
      t.to = r.Str();
      t.value = r.F64();
      rep.transitions.push_back(std::move(t));
    }
  }
  const uint64_t nspans = r.U64();
  for (uint64_t i = 0; i < nspans && r.ok(); ++i) {
    ForensicReport::SpanRow s;
    s.name = r.Str();
    s.window_seq = r.U64();
    s.ts_ns = r.U64();
    s.dur_ns = r.U64();
    s.rows = r.U64();
    rep.spans.push_back(std::move(s));
  }
  if (!r.ok()) {
    return Status::IOError("flight segment payload malformed: " + path);
  }
  rep.valid = true;
  return rep;
}

std::string ForensicReport::ToText() const {
  std::string out;
  out += "=== flight recorder: pre-crash forensics ===\n";
  out += "segment: " + path + "\n";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "scrapes: %llu  interval: %llums  series: %zu\n",
                static_cast<unsigned long long>(scrapes),
                static_cast<unsigned long long>(interval_ms), rows.size());
  out += buf;

  out += "-- alerts ";
  std::snprintf(buf, sizeof(buf), "(%zu fired) --\n", fired_alerts());
  out += buf;
  for (const AlertRow& a : alerts) {
    if (a.state == "inactive" && a.times_fired == 0) continue;
    std::snprintf(buf, sizeof(buf),
                  "  [%s] %-24s %-8s value=%s threshold=%s fired=%llu\n",
                  a.severity.c_str(), a.name.c_str(), a.state.c_str(),
                  Humanize(a.value).c_str(), Humanize(a.threshold).c_str(),
                  static_cast<unsigned long long>(a.times_fired));
    out += buf;
  }
  if (!transitions.empty()) {
    out += "-- alert transitions (oldest first) --\n";
    for (const TransitionRow& t : transitions) {
      std::snprintf(buf, sizeof(buf), "  t=%llums %-24s %s -> %s (value=%s)\n",
                    static_cast<unsigned long long>(t.t_ns / 1000000),
                    t.rule.c_str(), t.from.c_str(), t.to.c_str(),
                    Humanize(t.value).c_str());
      out += buf;
    }
  }

  // Last-K-intervals table: headline series first (anything that moved),
  // constants suppressed to keep the table readable.
  out += "-- last intervals (counters as rate/s, gauges as value) --\n";
  for (const SeriesRow& row : rows) {
    bool moved = false;
    for (double v : row.values) {
      if (v != 0.0) {
        moved = true;
        break;
      }
    }
    if (!moved) continue;
    std::string line = "  ";
    line += row.key;
    line += ": ";
    const size_t n = row.values.size();
    const size_t from = n > 12 ? n - 12 : 0;
    for (size_t i = from; i < n; ++i) {
      if (i > from) line += " ";
      line += Humanize(row.values[i]);
    }
    line += "\n";
    out += line;
  }

  if (!spans.empty()) {
    out += "-- newest spans --\n";
    const size_t from = spans.size() > 8 ? spans.size() - 8 : 0;
    for (size_t i = from; i < spans.size(); ++i) {
      const SpanRow& s = spans[i];
      std::snprintf(buf, sizeof(buf),
                    "  %-20s window=%llu dur=%lluus rows=%llu\n",
                    s.name.c_str(),
                    static_cast<unsigned long long>(s.window_seq),
                    static_cast<unsigned long long>(s.dur_ns / 1000),
                    static_cast<unsigned long long>(s.rows));
      out += buf;
    }
  }
  out += "=== end forensics ===\n";
  return out;
}

std::string ForensicReport::ToJson() const {
  std::string out = "{\"valid\": ";
  out += valid ? "true" : "false";
  out += ", \"path\": \"";
  AppendJsonEscaped(out, path);
  out += "\", \"written_at_ms\": " + std::to_string(written_at_ns / 1000000);
  out += ", \"scrapes\": " + std::to_string(scrapes);
  out += ", \"interval_ms\": " + std::to_string(interval_ms);
  out += ", \"fired_alerts\": " + std::to_string(fired_alerts());
  out += ", \"alerts\": [";
  for (size_t i = 0; i < alerts.size(); ++i) {
    const AlertRow& a = alerts[i];
    if (i) out += ", ";
    out += "{\"name\": \"";
    AppendJsonEscaped(out, a.name);
    out += "\", \"severity\": \"" + a.severity;
    out += "\", \"state\": \"" + a.state;
    out += "\", \"value\": ";
    AppendDouble(out, a.value);
    out += ", \"threshold\": ";
    AppendDouble(out, a.threshold);
    out += ", \"times_fired\": " + std::to_string(a.times_fired);
    out += "}";
  }
  out += "], \"transitions\": [";
  for (size_t i = 0; i < transitions.size(); ++i) {
    const TransitionRow& t = transitions[i];
    if (i) out += ", ";
    out += "{\"t_ms\": " + std::to_string(t.t_ns / 1000000);
    out += ", \"rule\": \"";
    AppendJsonEscaped(out, t.rule);
    out += "\", \"from\": \"" + t.from + "\", \"to\": \"" + t.to;
    out += "\", \"value\": ";
    AppendDouble(out, t.value);
    out += "}";
  }
  out += "], \"series\": [";
  for (size_t i = 0; i < rows.size(); ++i) {
    const SeriesRow& row = rows[i];
    if (i) out += ", ";
    out += "{\"key\": \"";
    AppendJsonEscaped(out, row.key);
    out += "\", \"kind\": \"";
    out += row.kind == 0 ? "counter" : "gauge";
    out += "\", \"points\": [";
    for (size_t k = 0; k < row.values.size(); ++k) {
      if (k) out += ", ";
      out += "[" + std::to_string(row.t_ns[k] / 1000000) + ", ";
      AppendDouble(out, row.values[k]);
      out += "]";
    }
    out += "]}";
  }
  out += "], \"spans\": [";
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRow& s = spans[i];
    if (i) out += ", ";
    out += "{\"name\": \"";
    AppendJsonEscaped(out, s.name);
    out += "\", \"window\": " + std::to_string(s.window_seq);
    out += ", \"ts_ns\": " + std::to_string(s.ts_ns);
    out += ", \"dur_ns\": " + std::to_string(s.dur_ns);
    out += ", \"rows\": " + std::to_string(s.rows);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace obs
}  // namespace streamop
