#include "obs/timeseries.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "obs/alerts.h"
#include "obs/flight_recorder.h"

namespace streamop {
namespace obs {

namespace {

constexpr uint32_t kInvalid = 0xffffffffu;

void AppendJsonEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
}

void AppendDouble(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

std::string MakeKey(const std::string& name, const std::string& labels) {
  if (labels.empty()) return name;
  std::string key = name;
  key += '{';
  key += labels;
  key += '}';
  return key;
}

}  // namespace

TimeSeries::TimeSeries(TimeSeriesOptions options) : options_(options) {
  if (options_.capacity < 2) options_.capacity = 2;
  if (options_.max_points < 16) options_.max_points = 16;
  if (options_.max_bucket_deltas < 16) options_.max_bucket_deltas = 16;
  intervals_.resize(options_.capacity);
  points_.resize(options_.capacity * options_.max_points);
  buckets_.resize(options_.capacity * options_.max_bucket_deltas);
  series_.reserve(options_.max_series);
}

uint32_t TimeSeries::FindOrAddSeries(const std::string& name,
                                     const std::string& labels,
                                     SeriesKind kind) {
  if (series_.size() >= options_.max_series) {
    ++dropped_series_;
    return kInvalid;
  }
  Series s;
  s.key = MakeKey(name, labels);
  s.name = name;
  s.kind = kind;
  series_.push_back(std::move(s));
  return static_cast<uint32_t>(series_.size() - 1);
}

uint32_t TimeSeries::FindOrAddHist(const std::string& name,
                                   const std::string& labels,
                                   uint32_t count_series) {
  HistSlot h;
  h.key = MakeKey(name, labels);
  h.count_series = count_series;
  h.last_buckets = std::make_unique<uint64_t[]>(Histogram::kNumBuckets);
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) h.last_buckets[i] = 0;
  hists_.push_back(std::move(h));
  return static_cast<uint32_t>(hists_.size() - 1);
}

void TimeSeries::FoldOut(size_t slot) {
  Interval& iv = intervals_[slot];
  const Point* p = &points_[slot * options_.max_points];
  for (uint32_t i = 0; i < iv.npoints; ++i) {
    Series& s = series_[p[i].series];
    if (s.kind == SeriesKind::kCounter) {
      s.base += p[i].value;
    } else {
      s.base = p[i].value;
    }
  }
  iv.npoints = 0;
  iv.nbuckets = 0;
}

void TimeSeries::Scrape(MetricRegistry& reg, uint64_t t_ns) {
  if constexpr (!kStatsEnabled) {
    (void)reg;
    (void)t_ns;
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  const size_t slot = static_cast<size_t>(seq_ % options_.capacity);
  if (seq_ >= options_.capacity) FoldOut(slot);
  Interval& iv = intervals_[slot];
  iv = Interval{};
  iv.t_ns = t_ns;
  Point* points = &points_[slot * options_.max_points];
  BucketDelta* buckets = &buckets_[slot * options_.max_bucket_deltas];

  // entry_map_ mirrors the registry's append-only entry order, so at
  // steady state the scrape resolves every metric without a string
  // compare or an allocation. The callback must capture at most two
  // pointers: std::function stores that inline, anything bigger would
  // heap-allocate per scrape.
  ScrapeCtx ctx{0, &iv, points, buckets};
  reg.Visit([this, &ctx](const MetricRef& m) { ScrapeEntry(m, ctx); });
  ++seq_;
  scrapes_.fetch_add(1, std::memory_order_relaxed);
}

void TimeSeries::ScrapeEntry(const MetricRef& m, ScrapeCtx& ctx) {
  Interval& iv = *ctx.iv;
  Point* points = ctx.points;
  BucketDelta* buckets = ctx.buckets;
  {
    const size_t i = ctx.entry_idx++;
    if (i >= entry_map_.size()) {
      EntryMap em;
      switch (m.kind) {
        case MetricKind::kCounter:
          em.primary = FindOrAddSeries(m.name, m.labels, SeriesKind::kCounter);
          break;
        case MetricKind::kGauge:
          em.primary = FindOrAddSeries(m.name, m.labels, SeriesKind::kGauge);
          break;
        case MetricKind::kHistogram: {
          em.primary =
              FindOrAddSeries(m.name + "_count", m.labels, SeriesKind::kCounter);
          em.sum =
              FindOrAddSeries(m.name + "_sum", m.labels, SeriesKind::kCounter);
          if (em.primary != kInvalid) {
            em.hist = FindOrAddHist(m.name, m.labels, em.primary);
          }
          break;
        }
      }
      entry_map_.push_back(em);
    }
    const EntryMap& em = entry_map_[i];
    auto push_point = [&](uint32_t sid, double raw) {
      if (sid == kInvalid) return;
      Series& s = series_[sid];
      if (s.kind == SeriesKind::kCounter) {
        // First sight folds into the same arithmetic: last starts at 0,
        // so the whole cumulative value becomes this interval's delta.
        const double delta = raw - s.last;
        s.last = raw;
        s.seen = true;
        if (delta == 0.0) return;
        if (iv.npoints >= options_.max_points) {
          ++iv.dropped_points;
          ++dropped_points_;
          return;
        }
        points[iv.npoints++] = Point{sid, delta};
      } else {
        const bool changed = !s.seen || raw != s.last;
        s.last = raw;
        s.seen = true;
        if (!changed) return;
        if (iv.npoints >= options_.max_points) {
          ++iv.dropped_points;
          ++dropped_points_;
          return;
        }
        points[iv.npoints++] = Point{sid, raw};
      }
    };
    switch (m.kind) {
      case MetricKind::kCounter:
        push_point(em.primary, static_cast<double>(m.counter->value()));
        break;
      case MetricKind::kGauge:
        push_point(em.primary, m.gauge->value());
        break;
      case MetricKind::kHistogram: {
        push_point(em.primary, static_cast<double>(m.histogram->count()));
        push_point(em.sum, static_cast<double>(m.histogram->sum()));
        if (em.hist != kInvalid) {
          HistSlot& h = hists_[em.hist];
          for (size_t b = 0; b < Histogram::kNumBuckets; ++b) {
            const uint64_t cur = m.histogram->bucket_count(b);
            const uint64_t delta = cur - h.last_buckets[b];
            if (delta == 0) continue;
            h.last_buckets[b] = cur;
            if (iv.nbuckets >= options_.max_bucket_deltas) {
              ++iv.dropped_buckets;
              continue;
            }
            buckets[iv.nbuckets++] =
                BucketDelta{em.hist, static_cast<uint32_t>(b), delta};
          }
        }
        break;
      }
    }
  }
}

size_t TimeSeries::num_series() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_.size();
}

uint64_t TimeSeries::dropped_points() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_points_;
}

uint64_t TimeSeries::dropped_series() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_series_;
}

std::vector<std::string> TimeSeries::SeriesKeys() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const Series& s : series_) out.push_back(s.key);
  return out;
}

size_t TimeSeries::RetainedLocked() const {
  return static_cast<size_t>(
      std::min<uint64_t>(seq_, options_.capacity));
}

std::vector<TimeSeriesPoint> TimeSeries::WindowLocked(
    uint32_t sid, size_t max_intervals) const {
  std::vector<TimeSeriesPoint> out;
  if (sid >= series_.size()) return out;
  const Series& s = series_[sid];
  const size_t retained = RetainedLocked();
  if (retained == 0) return out;
  const size_t emit_from = retained > max_intervals ? retained - max_intervals
                                                    : 0;
  out.reserve(retained - emit_from);
  double value = s.base;  // value just before the oldest retained interval
  for (size_t k = 0; k < retained; ++k) {
    const uint64_t global = seq_ - retained + k;
    const size_t slot = static_cast<size_t>(global % options_.capacity);
    const Interval& iv = intervals_[slot];
    const Point* p = &points_[slot * options_.max_points];
    double delta = 0.0;
    bool hit = false;
    for (uint32_t i = 0; i < iv.npoints; ++i) {
      if (p[i].series == sid) {
        hit = true;
        if (s.kind == SeriesKind::kCounter) {
          delta = p[i].value;
          value += delta;
        } else {
          value = p[i].value;
        }
        break;
      }
    }
    (void)hit;
    if (k >= emit_from) {
      out.push_back(TimeSeriesPoint{iv.t_ns, value, delta});
    }
  }
  return out;
}

std::vector<uint32_t> TimeSeries::MatchLocked(
    const std::string& key_or_name) const {
  std::vector<uint32_t> out;
  for (uint32_t i = 0; i < series_.size(); ++i) {
    if (series_[i].key == key_or_name || series_[i].name == key_or_name) {
      out.push_back(i);
    }
  }
  return out;
}

std::vector<TimeSeriesPoint> TimeSeries::Window(const std::string& key,
                                                size_t max_intervals) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (uint32_t i = 0; i < series_.size(); ++i) {
    if (series_[i].key == key) return WindowLocked(i, max_intervals);
  }
  return {};
}

double TimeSeries::LatestValue(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Series& s : series_) {
    if (s.key == key) return s.seen ? s.last : std::nan("");
  }
  return std::nan("");
}

double TimeSeries::MaxValue(const std::string& key_or_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  double worst = std::nan("");
  for (const Series& s : series_) {
    if (!s.seen) continue;
    if (s.key != key_or_name && s.name != key_or_name) continue;
    if (std::isnan(worst) || s.last > worst) worst = s.last;
  }
  return worst;
}

double TimeSeries::Rate(const std::string& key_or_name,
                        double window_s) const {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t retained = RetainedLocked();
  if (retained < 2) return std::nan("");
  double total_delta = 0.0;
  bool any = false;
  // Interval k's delta covers (t_{k-1}, t_k]; include intervals newer than
  // the cutoff and measure the span from the predecessor of the oldest
  // included interval. When the window covers everything retained, the
  // oldest interval's own span is unknown — its delta is excluded.
  const size_t newest_slot =
      static_cast<size_t>((seq_ - 1) % options_.capacity);
  const uint64_t t_newest = intervals_[newest_slot].t_ns;
  const uint64_t window_ns =
      static_cast<uint64_t>(window_s * 1e9);
  size_t oldest_included = retained;  // index in [0, retained)
  for (size_t k = 0; k < retained; ++k) {
    const uint64_t global = seq_ - retained + k;
    const size_t slot = static_cast<size_t>(global % options_.capacity);
    if (t_newest - intervals_[slot].t_ns <= window_ns) {
      oldest_included = k;
      break;
    }
  }
  if (oldest_included >= retained) return std::nan("");
  size_t first_counted = oldest_included;
  uint64_t t_span_start;
  if (oldest_included == 0) {
    first_counted = 1;  // span before interval 0 is unknown
    t_span_start =
        intervals_[static_cast<size_t>((seq_ - retained) %
                                       options_.capacity)].t_ns;
  } else {
    const uint64_t global = seq_ - retained + oldest_included - 1;
    t_span_start =
        intervals_[static_cast<size_t>(global % options_.capacity)].t_ns;
  }
  if (t_newest <= t_span_start) return std::nan("");
  // Match inline rather than via MatchLocked(): the alert engine calls
  // Rate() once per rule per evaluation, and building a matched-id vector
  // here would put an allocation on that path.
  for (uint32_t sid = 0; sid < series_.size(); ++sid) {
    const Series& s = series_[sid];
    if (s.kind != SeriesKind::kCounter) continue;
    if (s.key != key_or_name && s.name != key_or_name) continue;
    any = true;
    for (size_t k = first_counted; k < retained; ++k) {
      const uint64_t global = seq_ - retained + k;
      const size_t slot = static_cast<size_t>(global % options_.capacity);
      const Interval& iv = intervals_[slot];
      const Point* p = &points_[slot * options_.max_points];
      for (uint32_t i = 0; i < iv.npoints; ++i) {
        if (p[i].series == sid) {
          total_delta += p[i].value;
          break;
        }
      }
    }
  }
  if (!any) return std::nan("");
  return total_delta / (static_cast<double>(t_newest - t_span_start) / 1e9);
}

double TimeSeries::HistogramQuantile(const std::string& key, double window_s,
                                     double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t retained = RetainedLocked();
  if (retained == 0) return std::nan("");
  uint32_t hid = 0xffffffffu;
  for (uint32_t i = 0; i < hists_.size(); ++i) {
    if (hists_[i].key == key) {
      hid = i;
      break;
    }
  }
  if (hid == 0xffffffffu) return std::nan("");
  const size_t newest_slot =
      static_cast<size_t>((seq_ - 1) % options_.capacity);
  const uint64_t t_newest = intervals_[newest_slot].t_ns;
  const uint64_t window_ns = static_cast<uint64_t>(window_s * 1e9);
  uint64_t counts[Histogram::kNumBuckets] = {0};
  uint64_t total = 0;
  for (size_t k = 0; k < retained; ++k) {
    const uint64_t global = seq_ - retained + k;
    const size_t slot = static_cast<size_t>(global % options_.capacity);
    const Interval& iv = intervals_[slot];
    if (t_newest - iv.t_ns > window_ns) continue;
    const BucketDelta* b = &buckets_[slot * options_.max_bucket_deltas];
    for (uint32_t i = 0; i < iv.nbuckets; ++i) {
      if (b[i].hist == hid) {
        counts[b[i].bucket] += b[i].delta;
        total += b[i].delta;
      }
    }
  }
  if (total == 0) return std::nan("");
  const uint64_t target = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  uint64_t seen = 0;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    seen += counts[i];
    if (seen >= target && counts[i] > 0) {
      return static_cast<double>(Histogram::BucketUpperBound(i));
    }
  }
  return static_cast<double>(
      Histogram::BucketUpperBound(Histogram::kNumBuckets - 1));
}

std::string TimeSeries::SeriesListJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"interval_ms\": ";
  out += std::to_string(options_.interval_ms);
  out += ", \"capacity\": " + std::to_string(options_.capacity);
  out += ", \"retained\": " + std::to_string(RetainedLocked());
  out += ", \"scrapes\": " + std::to_string(seq_);
  out += ", \"dropped_points\": " + std::to_string(dropped_points_);
  out += ", \"dropped_series\": " + std::to_string(dropped_series_);
  out += ", \"series\": [";
  for (size_t i = 0; i < series_.size(); ++i) {
    if (i) out += ", ";
    out += "{\"key\": \"";
    AppendJsonEscaped(out, series_[i].key);
    out += "\", \"kind\": \"";
    out += series_[i].kind == SeriesKind::kCounter ? "counter" : "gauge";
    out += "\"}";
  }
  out += "]}";
  return out;
}

std::string TimeSeries::RangeJson(const std::string& metric,
                                  double range_s) const {
  std::unique_lock<std::mutex> lock(mu_);
  const size_t retained = RetainedLocked();
  const size_t max_intervals =
      options_.interval_ms > 0
          ? std::min<size_t>(
                retained,
                static_cast<size_t>(range_s * 1000.0 /
                                        static_cast<double>(
                                            options_.interval_ms) +
                                    1.0))
          : retained;
  std::string out = "{\"metric\": \"";
  AppendJsonEscaped(out, metric);
  out += "\", \"range_s\": ";
  AppendDouble(out, range_s);
  out += ", \"series\": [";
  const std::vector<uint32_t> matched = MatchLocked(metric);
  bool first = true;
  for (uint32_t sid : matched) {
    const std::vector<TimeSeriesPoint> pts = WindowLocked(sid, max_intervals);
    if (!first) out += ", ";
    first = false;
    out += "{\"key\": \"";
    AppendJsonEscaped(out, series_[sid].key);
    out += "\", \"kind\": \"";
    out += series_[sid].kind == SeriesKind::kCounter ? "counter" : "gauge";
    out += "\", \"points\": [";
    uint64_t prev_t = 0;
    for (size_t i = 0; i < pts.size(); ++i) {
      if (i) out += ", ";
      out += "[";
      out += std::to_string(pts[i].t_ns / 1000000);
      out += ", ";
      AppendDouble(out, pts[i].value);
      out += ", ";
      double rate = 0.0;
      if (i > 0 && pts[i].t_ns > prev_t) {
        rate = pts[i].delta /
               (static_cast<double>(pts[i].t_ns - prev_t) / 1e9);
      }
      AppendDouble(out, rate);
      out += "]";
      prev_t = pts[i].t_ns;
    }
    out += "]}";
  }
  out += "], \"histograms\": [";
  // Interval-accurate quantiles for matching histogram families.
  bool hfirst = true;
  for (uint32_t hid = 0; hid < hists_.size(); ++hid) {
    const HistSlot& h = hists_[hid];
    const std::string bare =
        h.key.substr(0, h.key.find('{'));
    if (h.key != metric && bare != metric) continue;
    if (!hfirst) out += ", ";
    hfirst = false;
    out += "{\"key\": \"";
    AppendJsonEscaped(out, h.key);
    out += "\"";
    for (double q : {0.5, 0.99}) {
      out += q == 0.5 ? ", \"p50\": [" : ", \"p99\": [";
      bool pfirst = true;
      for (size_t k = retained > max_intervals ? retained - max_intervals : 0;
           k < retained; ++k) {
        const uint64_t global = seq_ - retained + k;
        const size_t slot = static_cast<size_t>(global % options_.capacity);
        const Interval& iv = intervals_[slot];
        const BucketDelta* b = &buckets_[slot * options_.max_bucket_deltas];
        uint64_t counts[Histogram::kNumBuckets] = {0};
        uint64_t total = 0;
        for (uint32_t i = 0; i < iv.nbuckets; ++i) {
          if (b[i].hist == hid) {
            counts[b[i].bucket] += b[i].delta;
            total += b[i].delta;
          }
        }
        if (!pfirst) out += ", ";
        pfirst = false;
        out += "[";
        out += std::to_string(iv.t_ns / 1000000);
        out += ", ";
        if (total == 0) {
          out += "null";
        } else {
          const uint64_t target = static_cast<uint64_t>(
              std::ceil(q * static_cast<double>(total)));
          uint64_t seen = 0;
          double v = static_cast<double>(
              Histogram::BucketUpperBound(Histogram::kNumBuckets - 1));
          for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
            seen += counts[i];
            if (seen >= target && counts[i] > 0) {
              v = static_cast<double>(Histogram::BucketUpperBound(i));
              break;
            }
          }
          AppendDouble(out, v);
        }
        out += "]";
      }
      out += "]";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

void TimeSeries::VisitTail(
    size_t last_k,
    const std::function<void(const std::string&, SeriesKind,
                             const std::vector<uint64_t>&,
                             const std::vector<double>&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> t_ns;
  std::vector<double> values;
  for (uint32_t sid = 0; sid < series_.size(); ++sid) {
    if (!series_[sid].seen) continue;
    const std::vector<TimeSeriesPoint> pts = WindowLocked(sid, last_k);
    if (pts.empty()) continue;
    t_ns.clear();
    values.clear();
    uint64_t prev_t = 0;
    for (size_t i = 0; i < pts.size(); ++i) {
      t_ns.push_back(pts[i].t_ns);
      if (series_[sid].kind == SeriesKind::kCounter) {
        double rate = 0.0;
        if (i > 0 && pts[i].t_ns > prev_t) {
          rate = pts[i].delta /
                 (static_cast<double>(pts[i].t_ns - prev_t) / 1e9);
        } else if (options_.interval_ms > 0) {
          rate = pts[i].delta /
                 (static_cast<double>(options_.interval_ms) / 1000.0);
        }
        values.push_back(rate);
      } else {
        values.push_back(pts[i].value);
      }
      prev_t = pts[i].t_ns;
    }
    fn(series_[sid].key, series_[sid].kind, t_ns, values);
  }
}

// ---------------------------------------------------------------------------
// TimeSeriesSampler
// ---------------------------------------------------------------------------

TimeSeriesSampler::TimeSeriesSampler(Options options) : options_(options) {
  if (options_.interval_ms == 0) options_.interval_ms = 250;
  if (options_.registry == nullptr) {
    options_.registry = &MetricRegistry::Default();
  }
}

TimeSeriesSampler::~TimeSeriesSampler() { Stop(); }

void TimeSeriesSampler::TickOnce(uint64_t t_ns) {
  if (options_.timeseries == nullptr) return;
  options_.timeseries->Scrape(*options_.registry, t_ns);
  if (options_.alerts != nullptr) {
    options_.alerts->Evaluate(*options_.timeseries, t_ns);
  }
  if (options_.recorder != nullptr) {
    options_.recorder->MaybeSpill(*options_.timeseries, options_.alerts,
                                  ticks_.load(std::memory_order_relaxed));
  }
  ticks_.fetch_add(1, std::memory_order_relaxed);
}

Status TimeSeriesSampler::Start() {
#ifdef STREAMOP_NO_STATS
  return Status::OK();
#else
  if (options_.timeseries == nullptr) {
    return Status::InvalidArgument("sampler needs a TimeSeries ring");
  }
  if (running_.load(std::memory_order_acquire)) return Status::OK();
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_requested_ = false;
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { StreamopTimeseriesSamplerMain(this); });
  return Status::OK();
#endif
}

void TimeSeriesSampler::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
}

void TimeSeriesSampler::Loop() {
#ifndef STREAMOP_NO_STATS
  std::unique_lock<std::mutex> lock(stop_mu_);
  while (!stop_requested_) {
    lock.unlock();
    TickOnce(NowNanos());
    lock.lock();
    stop_cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                      [this] { return stop_requested_; });
  }
#endif
}

}  // namespace obs
}  // namespace streamop

#ifndef STREAMOP_NO_STATS
void* StreamopTimeseriesSamplerMain(void* sampler) {
  static_cast<streamop::obs::TimeSeriesSampler*>(sampler)->Loop();
  return nullptr;
}
#endif
