// SLO alert engine over the metrics time-series ring (obs/timeseries.h):
// declarative threshold / rate / burn-rate rules with the classic
// pending -> firing -> resolved state machine and hysteresis, evaluated
// once per scrape on the sampler thread — never on the per-tuple path.
//
// Rule text syntax (one rule per line, `#` comments; see
// docs/OBSERVABILITY.md for the full table):
//
//   alert <name> if <expr> <cmp> <threshold> [for <n>] [resolve <m>]
//         [clear <value>] [over <seconds>] severity <info|warning|critical>
//
//   expr := value(<metric>)            latest value, worst across labels
//         | rate(<metric>)             per-second rate over `over` seconds
//         | burn(<num>, <den>)         rate(num)/rate(den) — the budget
//                                      burn fraction of an SLO
//   cmp  := > | >= | < | <=
//
// `for n` requires the condition to hold for n consecutive evaluations
// before the rule fires (pending in between); `resolve m` requires m
// consecutive clear evaluations before a firing rule resolves; `clear v`
// sets a hysteresis threshold for the clear test (defaults to the firing
// threshold). Metrics are matched by exact series key ("name{labels}") or
// bare name (aggregating across labeled series: rates sum, values take
// the worst).

#ifndef STREAMOP_OBS_ALERTS_H_
#define STREAMOP_OBS_ALERTS_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/timeseries.h"

namespace streamop {
namespace obs {

enum class AlertSeverity : uint8_t { kInfo = 0, kWarning = 1, kCritical = 2 };
enum class AlertState : uint8_t { kInactive = 0, kPending = 1, kFiring = 2 };

const char* AlertSeverityName(AlertSeverity s);
const char* AlertStateName(AlertState s);

struct AlertRule {
  std::string name;
  enum class Expr : uint8_t { kValue, kRate, kBurn } expr = Expr::kValue;
  std::string metric;        // value()/rate() operand; burn() numerator
  std::string denom_metric;  // burn() denominator
  enum class Cmp : uint8_t { kGt, kGe, kLt, kLe } cmp = Cmp::kGt;
  double threshold = 0.0;
  double clear_threshold = 0.0;  // hysteresis level for the clear test
  bool has_clear_threshold = false;
  uint32_t for_intervals = 1;      // consecutive true evals before firing
  uint32_t resolve_intervals = 1;  // consecutive clear evals before resolve
  double window_s = 10.0;          // rate()/burn() lookback
  AlertSeverity severity = AlertSeverity::kWarning;
};

/// One state-machine transition, kept in a bounded log for /alerts and the
/// flight recorder ("what fired in the last minute before the crash").
struct AlertTransition {
  uint64_t t_ns = 0;
  std::string rule;
  AlertState from = AlertState::kInactive;
  AlertState to = AlertState::kInactive;
  double value = 0.0;  // the rule expression's value at transition time
};

struct AlertStatus {
  AlertRule rule;
  AlertState state = AlertState::kInactive;
  double last_value = 0.0;
  uint64_t since_ns = 0;  // entered the current state at this time
  uint32_t consecutive_true = 0;
  uint32_t consecutive_clear = 0;
  uint64_t times_fired = 0;
};

struct AlertSummary {
  size_t firing = 0;
  size_t pending = 0;
  size_t critical_firing = 0;
  AlertSeverity worst = AlertSeverity::kInfo;  // worst firing severity
};

class AlertEngine {
 public:
  struct Options {
    size_t max_transitions = 256;  // bounded transition log
    /// Accuracy-SLO target for the built-in quality rule: fire when any
    /// estimator's 95% CI half-width exceeds this (absolute units of the
    /// estimated quantity). <= 0 disables the rule.
    double quality_ci_target = 0.0;
  };

  AlertEngine();
  explicit AlertEngine(Options options);

  /// Installs the built-in SLO rules over the engine's own telemetry:
  /// shed fraction, ring push-failure rate, ingest gap/duplicate rate,
  /// late-tuple rate, checkpoint degraded/age, watchdog fired, and (when
  /// quality_ci_target > 0) the per-estimator accuracy SLO.
  void AddBuiltinRules();

  void AddRule(const AlertRule& rule);

  /// Parses rule text (the `--alert-rules` file) and installs every rule.
  /// On error returns kInvalidArgument naming the offending line; rules on
  /// earlier lines are still installed.
  Status AddRulesFromText(const std::string& text);

  static Result<AlertRule> ParseRuleLine(const std::string& line);

  /// One evaluation pass over every rule; called after each scrape.
  void Evaluate(const TimeSeries& ts, uint64_t t_ns = NowNanos());

  size_t num_rules() const;
  uint64_t evaluations() const;
  std::vector<AlertStatus> Snapshot() const;
  std::vector<AlertTransition> Transitions() const;
  AlertSummary Summary() const;

  /// True while any rule of critical severity is firing — the /healthz
  /// 503 condition.
  bool critical_firing() const;

  /// {"rules": [...], "transitions": [...], "summary": {...}}
  std::string ToJson() const;

 private:
  struct RuleState {
    AlertRule rule;
    AlertState state = AlertState::kInactive;
    double last_value = 0.0;
    uint64_t since_ns = 0;
    uint32_t consecutive_true = 0;
    uint32_t consecutive_clear = 0;
    uint64_t times_fired = 0;
  };

  double EvalExpr(const AlertRule& rule, const TimeSeries& ts) const;
  bool Crossed(const AlertRule& rule, double value, bool clearing) const;
  void Record(uint64_t t_ns, const RuleState& rs, AlertState from,
              AlertState to);  // requires mu_

  Options options_;
  mutable std::mutex mu_;
  std::vector<RuleState> rules_;
  std::vector<AlertTransition> transitions_;  // ring, newest at log_next_-1
  size_t log_next_ = 0;
  uint64_t log_total_ = 0;
  uint64_t evaluations_ = 0;
  std::atomic<size_t> critical_firing_{0};
};

}  // namespace obs
}  // namespace streamop

#endif  // STREAMOP_OBS_ALERTS_H_
