#include "obs/span.h"

#include <algorithm>
#include <cstdio>

namespace streamop {
namespace obs {

namespace {

// Shared row formatter for the flat JSON exports.
void AppendSpanJson(std::string* out, const SpanRecord& s) {
  char buf[384];
  std::snprintf(
      buf, sizeof(buf),
      "{\"name\": \"%s\", \"span_id\": %llu, \"parent_id\": %llu, "
      "\"window_seq\": %llu, \"ts_ns\": %llu, \"dur_ns\": %llu, "
      "\"rows\": %llu, \"admitted\": %llu, \"shed_p\": %.6g, "
      "\"max_weight\": %.6g}",
      s.name != nullptr ? s.name : "?",
      static_cast<unsigned long long>(s.span_id),
      static_cast<unsigned long long>(s.parent_id),
      static_cast<unsigned long long>(s.window_seq),
      static_cast<unsigned long long>(s.ts_ns),
      static_cast<unsigned long long>(s.dur_ns),
      static_cast<unsigned long long>(s.rows),
      static_cast<unsigned long long>(s.admitted), s.shed_p, s.max_weight);
  *out += buf;
}

}  // namespace

SpanRing& SpanRing::Default() {
  static SpanRing* ring = new SpanRing();
  return *ring;
}

SpanRing::SpanRing(size_t capacity) {
  if (capacity < 1) capacity = 1;
  slots_ = std::make_unique<Slot[]>(capacity);
  cap_ = capacity;
}

std::vector<SpanRecord> SpanRing::Snapshot() const {
  const uint64_t seq = seq_.load(std::memory_order_relaxed);
  const size_t n =
      static_cast<size_t>(std::min<uint64_t>(seq, static_cast<uint64_t>(cap_)));
  std::vector<SpanRecord> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Slot& s = slots_[i];
    SpanRecord r;
    r.name = s.name.load(std::memory_order_relaxed);
    r.span_id = s.span_id.load(std::memory_order_relaxed);
    r.parent_id = s.parent_id.load(std::memory_order_relaxed);
    r.window_seq = s.window_seq.load(std::memory_order_relaxed);
    r.ts_ns = s.ts_ns.load(std::memory_order_relaxed);
    r.dur_ns = s.dur_ns.load(std::memory_order_relaxed);
    r.rows = s.rows.load(std::memory_order_relaxed);
    r.admitted = s.admitted.load(std::memory_order_relaxed);
    r.shed_p = s.shed_p.load(std::memory_order_relaxed);
    r.max_weight = s.max_weight.load(std::memory_order_relaxed);
    if (r.name == nullptr) continue;  // torn with a concurrent first write
    out.push_back(r);
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
              return a.span_id < b.span_id;
            });
  return out;
}

std::string SpanRing::ToChromeTraceJson() const {
  std::vector<SpanRecord> spans = Snapshot();
  const uint64_t base = spans.empty() ? 0 : spans.front().ts_ns;
  std::string out = "{\"traceEvents\": [";
  char buf[512];
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    if (i > 0) out += ",";
    std::snprintf(
        buf, sizeof(buf),
        "\n {\"name\": \"%s\", \"ph\": \"X\", \"ts\": %.3f, \"dur\": %.3f, "
        "\"pid\": 1, \"tid\": 1, \"args\": {\"span_id\": %llu, "
        "\"parent_id\": %llu, \"window_seq\": %llu, \"rows\": %llu, "
        "\"admitted\": %llu, \"shed_p\": %.6g, \"max_weight\": %.6g}}",
        s.name, static_cast<double>(s.ts_ns - base) / 1000.0,
        static_cast<double>(s.dur_ns) / 1000.0,
        static_cast<unsigned long long>(s.span_id),
        static_cast<unsigned long long>(s.parent_id),
        static_cast<unsigned long long>(s.window_seq),
        static_cast<unsigned long long>(s.rows),
        static_cast<unsigned long long>(s.admitted), s.shed_p, s.max_weight);
    out += buf;
  }
  out += "\n]}\n";
  return out;
}

std::string SpanRing::ToJson() const {
  std::vector<SpanRecord> spans = Snapshot();
  std::string out = "{\"spans\": [";
  for (size_t i = 0; i < spans.size(); ++i) {
    if (i > 0) out += ",";
    out += "\n ";
    AppendSpanJson(&out, spans[i]);
  }
  out += spans.empty() ? "]}\n" : "\n]}\n";
  return out;
}

std::string SpanRing::WindowJson(uint64_t window_seq) const {
  std::vector<SpanRecord> spans = Snapshot();
  char head[96];
  std::snprintf(head, sizeof(head), "{\"window_seq\": %llu, \"spans\": [",
                static_cast<unsigned long long>(window_seq));
  std::string out = head;
  bool first = true;
  for (const SpanRecord& s : spans) {
    if (s.window_seq != window_seq) continue;
    if (!first) out += ",";
    first = false;
    out += "\n ";
    AppendSpanJson(&out, s);
  }
  out += first ? "]}\n" : "\n]}\n";
  return out;
}

}  // namespace obs
}  // namespace streamop
