#include "obs/trace_ring.h"

#include <algorithm>
#include <cstdio>

namespace streamop {
namespace obs {

TraceRing& TraceRing::Default() {
  static TraceRing* ring = new TraceRing();
  return *ring;
}

TraceRing::TraceRing(size_t capacity) {
  if (capacity < 1) capacity = 1;
  slots_ = std::make_unique<Slot[]>(capacity);
  cap_ = capacity;
}

std::vector<TraceEvent> TraceRing::Snapshot() const {
  const uint64_t seq = seq_.load(std::memory_order_relaxed);
  const size_t n =
      static_cast<size_t>(std::min<uint64_t>(seq, static_cast<uint64_t>(cap_)));
  std::vector<TraceEvent> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Slot& s = slots_[i];
    TraceEvent e;
    e.name = s.name.load(std::memory_order_relaxed);
    e.ts_ns = s.ts_ns.load(std::memory_order_relaxed);
    e.dur_ns = s.dur_ns.load(std::memory_order_relaxed);
    e.instant = s.instant.load(std::memory_order_relaxed);
    e.arg_name = s.arg_name.load(std::memory_order_relaxed);
    e.arg = s.arg.load(std::memory_order_relaxed);
    if (e.name == nullptr) continue;  // torn with a concurrent first write
    out.push_back(e);
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_ns < b.ts_ns;
            });
  return out;
}

std::string TraceRing::ToChromeTraceJson() const {
  std::vector<TraceEvent> events = Snapshot();
  const uint64_t base = events.empty() ? 0 : events.front().ts_ns;
  std::string out = "{\"traceEvents\": [";
  char buf[256];
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    const double ts_us = static_cast<double>(e.ts_ns - base) / 1000.0;
    if (i > 0) out += ",";
    if (e.instant) {
      std::snprintf(buf, sizeof(buf),
                    "\n {\"name\": \"%s\", \"ph\": \"i\", \"s\": \"g\", "
                    "\"ts\": %.3f, \"pid\": 1, \"tid\": 1",
                    e.name, ts_us);
      out += buf;
      if (e.arg_name != nullptr) {
        std::snprintf(buf, sizeof(buf), ", \"args\": {\"%s\": %.17g}",
                      e.arg_name, e.arg);
        out += buf;
      }
      out += "}";
    } else {
      std::snprintf(buf, sizeof(buf),
                    "\n {\"name\": \"%s\", \"ph\": \"X\", \"ts\": %.3f, "
                    "\"dur\": %.3f, \"pid\": 1, \"tid\": 1}",
                    e.name, ts_us,
                    static_cast<double>(e.dur_ns) / 1000.0);
      out += buf;
    }
  }
  out += "\n]}\n";
  return out;
}

}  // namespace obs
}  // namespace streamop
