#include "obs/quality.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace streamop {
namespace obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 4);
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void AppendDouble(std::string* out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no inf/nan; clamp to null so consumers keep parsing.
    out->append("null");
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

void AppendUInt(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

void AppendEstimator(std::string* out, const EstimatorQuality& q) {
  *out += "{\"kind\": \"";
  *out += q.kind;
  *out += "\", \"display\": \"" + JsonEscape(q.display) + "\"";
  *out += ", \"supergroup\": ";
  AppendUInt(out, q.supergroup);
  if (q.has_estimate) {
    *out += ", \"estimate\": ";
    AppendDouble(out, q.estimate);
  }
  *out += ", \"variance\": ";
  AppendDouble(out, q.variance);
  *out += ", \"ci95\": ";
  AppendDouble(out, q.ci95);
  *out += ", \"deterministic_bound\": ";
  AppendDouble(out, q.deterministic_bound);
  *out += ", \"rel_error\": ";
  AppendDouble(out, q.rel_error);
  if (q.coverage >= 0.0) {
    *out += ", \"coverage\": ";
    AppendDouble(out, q.coverage);
  }
  if (q.threshold_z > 0.0) {
    *out += ", \"threshold_z\": ";
    AppendDouble(out, q.threshold_z);
  }
  *out += ", \"samples\": ";
  AppendUInt(out, q.samples);
  if (q.target > 0) {
    *out += ", \"target\": ";
    AppendUInt(out, q.target);
  }
  *out += "}";
}

}  // namespace

std::string WindowQualityReportToJson(const WindowQualityReport& r) {
  std::string out;
  out.reserve(256 + r.estimators.size() * 160);
  out += "{\"node\": \"" + JsonEscape(r.node) + "\"";
  out += ", \"seq\": ";
  AppendUInt(&out, r.seq);
  out += ", \"window_id\": \"" + JsonEscape(r.window_id) + "\"";
  out += ", \"tuples_in\": ";
  AppendUInt(&out, r.tuples_in);
  out += ", \"tuples_admitted\": ";
  AppendUInt(&out, r.tuples_admitted);
  out += ", \"groups_output\": ";
  AppendUInt(&out, r.groups_output);
  out += ", \"supergroups\": ";
  AppendUInt(&out, r.supergroups);
  out += ", \"truncated\": ";
  out += r.truncated ? "true" : "false";
  out += ", \"max_weight\": ";
  AppendDouble(&out, r.max_weight);
  out += ", \"shed_p_min\": ";
  AppendDouble(&out, r.shed_p_min);
  out += ", \"estimators\": [";
  bool first = true;
  for (const EstimatorQuality& q : r.estimators) {
    if (!first) out += ", ";
    first = false;
    AppendEstimator(&out, q);
  }
  out += "]}";
  return out;
}

QualityRing& QualityRing::Default() {
  static QualityRing* ring = new QualityRing();
  return *ring;
}

QualityRing::QualityRing(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void QualityRing::Push(WindowQualityReport&& report) {
  std::lock_guard<std::mutex> lock(mu_);
  if (reports_.size() >= capacity_) reports_.pop_front();
  reports_.push_back(std::move(report));
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<WindowQualityReport> QualityRing::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<WindowQualityReport>(reports_.begin(), reports_.end());
}

size_t QualityRing::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reports_.size();
}

std::string QualityRing::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"capacity\": ";
  AppendUInt(&out, capacity_);
  out += ", \"recorded\": ";
  AppendUInt(&out, recorded_.load(std::memory_order_relaxed));
  out += ", \"reports\": [";
  bool first = true;
  for (const WindowQualityReport& r : reports_) {
    if (!first) out += ",";
    first = false;
    out += "\n ";
    out += WindowQualityReportToJson(r);
  }
  out += "\n]}\n";
  return out;
}

}  // namespace obs
}  // namespace streamop
