// Metrics time-series: a sampler thread scrapes the MetricRegistry every
// N ms into a fixed-size, delta-encoded ring of interval snapshots — the
// history layer the point-in-time endpoints (/metrics, /windows) lack.
// Rates, trends and "what happened in the last minute before the crash"
// all derive from this ring; the alert engine (obs/alerts.h) evaluates
// its rules over it and the flight recorder (obs/flight_recorder.h)
// spills it to disk.
//
// Encoding (DESIGN.md §7 spirit — bounded, heap-free at steady state):
//  * Counters are stored as per-interval deltas, sparsely: a counter that
//    did not move contributes no point.
//  * Gauges are stored as values, also sparsely: only when the value
//    changed since the previous scrape (plus once on first sight).
//  * Histograms contribute two counter-like scalar series (`name_count`,
//    `name_sum`) plus sparse per-interval *bucket deltas*, so interval-
//    accurate quantiles and rates are derivable for any retained window.
//  * Every interval's points live in preallocated flat arrays (capacity ×
//    max_points slots); when an interval is evicted its deltas fold into
//    a per-series base value, so reconstruction stays exact across
//    wraparound. Overflowing an interval's slice drops points and counts
//    the drop — never allocates, never blocks the scrape.
//
// The scrape runs on its own thread (TimeSeriesSampler), never on the
// per-tuple path. Under STREAMOP_NO_STATS the sampler's thread entry
// point is not compiled at all (nm-asserted in CI) and Scrape() is a
// no-op.

#ifndef STREAMOP_OBS_TIMESERIES_H_
#define STREAMOP_OBS_TIMESERIES_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

/// Thread entry of the time-series sampler. External linkage on purpose:
/// the NO_STATS CI job asserts with nm that this symbol is absent when the
/// observability layer is compiled out (and present otherwise).
#ifndef STREAMOP_NO_STATS
void* StreamopTimeseriesSamplerMain(void* sampler);
#endif

namespace streamop {
namespace obs {

struct TimeSeriesOptions {
  size_t capacity = 240;            // intervals retained (ring depth)
  size_t max_series = 1024;         // scalar series slots
  size_t max_points = 1024;         // scalar points per interval (sparse)
  size_t max_bucket_deltas = 2048;  // histogram bucket deltas per interval
  uint64_t interval_ms = 250;       // sampler period (0 = sampler disabled)
};

enum class SeriesKind : uint8_t { kCounter = 0, kGauge = 1 };

/// One reconstructed point handed to readers.
struct TimeSeriesPoint {
  uint64_t t_ns = 0;
  double value = 0.0;  // cumulative (counter) or current (gauge)
  double delta = 0.0;  // per-interval delta (counters; 0 for gauges)
};

class TimeSeries {
 public:
  explicit TimeSeries(TimeSeriesOptions options = TimeSeriesOptions());

  const TimeSeriesOptions& options() const { return options_; }

  /// One scrape of `reg`. Allocation-free at steady state: new series
  /// allocate their descriptor on first sight only (registration-time,
  /// not per scrape). Thread-safe against all readers.
  void Scrape(MetricRegistry& reg, uint64_t t_ns = NowNanos());

  uint64_t scrapes() const { return scrapes_.load(std::memory_order_relaxed); }
  size_t num_series() const;
  uint64_t dropped_points() const;
  uint64_t dropped_series() const;

  /// Series keys ("name" or "name{labels}") in first-sight order.
  std::vector<std::string> SeriesKeys() const;

  /// Reconstructed points of series `key` over the newest `max_intervals`
  /// retained intervals (oldest first). Empty if the key is unknown.
  std::vector<TimeSeriesPoint> Window(const std::string& key,
                                      size_t max_intervals) const;

  /// Latest cumulative (counter) or current (gauge) value; NaN if unknown.
  double LatestValue(const std::string& key) const;

  /// Per-second rate of a counter-kind series over the trailing
  /// `window_s` seconds (sum of deltas / actual covered time). Series
  /// matching is by exact key OR bare metric name (aggregates across all
  /// labeled series of that name). NaN when nothing matches or fewer than
  /// two intervals are retained.
  double Rate(const std::string& key_or_name, double window_s) const;

  /// Worst (maximum) latest value across every series matching the exact
  /// key or bare name; NaN when nothing matches.
  double MaxValue(const std::string& key_or_name) const;

  /// Interval-accurate quantile of histogram `name{labels}` over the
  /// trailing `window_s` seconds, rebuilt from the retained per-interval
  /// bucket deltas. Returns NaN for unknown histograms or empty windows.
  double HistogramQuantile(const std::string& key, double window_s,
                           double q) const;

  /// {"series": [...], "interval_ms": N, "scrapes": N, ...}
  std::string SeriesListJson() const;

  /// Points of every series whose key or bare name matches `metric`,
  /// limited to the trailing `range_s` seconds:
  /// {"metric": ..., "series": [{"key", "kind", "points": [[t_ms, value,
  /// rate_per_s], ...]}, ...]}. Histogram-backed keys additionally carry
  /// interval-accurate "p50"/"p99" arrays.
  std::string RangeJson(const std::string& metric, double range_s) const;

  /// Pre-rendered forensic rows for the flight recorder: the newest
  /// `last_k` intervals of every retained series (values for gauges,
  /// per-second rates for counters). Invokes `fn(key, kind, t_ns[],
  /// values[])` once per series under the ring lock.
  void VisitTail(size_t last_k,
                 const std::function<void(const std::string& key,
                                          SeriesKind kind,
                                          const std::vector<uint64_t>& t_ns,
                                          const std::vector<double>& values)>&
                     fn) const;

 private:
  struct Series {
    std::string key;   // "name" or "name{labels}"
    std::string name;  // bare metric name (for aggregate matching)
    SeriesKind kind = SeriesKind::kCounter;
    double last = 0.0;  // newest scraped cumulative/gauge value
    double base = 0.0;  // value just before the oldest retained interval
    bool seen = false;  // scraped at least once
  };
  struct HistSlot {
    std::string key;  // "name{labels}" of the histogram family
    uint32_t count_series = 0;  // index of the `name_count` scalar series
    std::unique_ptr<uint64_t[]> last_buckets;  // [Histogram::kNumBuckets]
  };
  struct Point {
    uint32_t series = 0;
    double value = 0.0;  // delta (counter) or value (gauge)
  };
  struct BucketDelta {
    uint32_t hist = 0;
    uint32_t bucket = 0;
    uint64_t delta = 0;
  };
  struct Interval {
    uint64_t t_ns = 0;
    uint32_t npoints = 0;
    uint32_t nbuckets = 0;
    uint32_t dropped_points = 0;
    uint32_t dropped_buckets = 0;
  };
  // Registry entry index -> series/hist slots. The registry is append-only
  // in registration order, so after first sight every scrape resolves a
  // metric by position — no string compares, no allocation.
  struct EntryMap {
    uint32_t primary = 0xffffffffu;  // counter/gauge sid; hist `_count` sid
    uint32_t sum = 0xffffffffu;      // hist `_sum` sid
    uint32_t hist = 0xffffffffu;     // HistSlot index
  };

  // All require mu_ held.
  // Per-scrape cursor; kept out of the Visit lambda so the callback
  // captures two pointers and stays inside std::function's inline buffer
  // (a larger capture would heap-allocate on every scrape).
  struct ScrapeCtx {
    size_t entry_idx = 0;
    Interval* iv = nullptr;
    Point* points = nullptr;
    BucketDelta* buckets = nullptr;
  };
  void ScrapeEntry(const MetricRef& m, ScrapeCtx& ctx);
  uint32_t FindOrAddSeries(const std::string& name, const std::string& labels,
                           SeriesKind kind);
  uint32_t FindOrAddHist(const std::string& name, const std::string& labels,
                         uint32_t count_series);
  void FoldOut(size_t slot);  // evict: fold slot's deltas into series bases
  size_t RetainedLocked() const;
  // Reconstructs series `sid` across the newest `max_intervals` intervals.
  std::vector<TimeSeriesPoint> WindowLocked(uint32_t sid,
                                            size_t max_intervals) const;
  std::vector<uint32_t> MatchLocked(const std::string& key_or_name) const;

  TimeSeriesOptions options_;
  mutable std::mutex mu_;
  std::vector<Series> series_;
  std::vector<HistSlot> hists_;
  std::vector<EntryMap> entry_map_;
  std::vector<Interval> intervals_;      // ring, capacity slots
  std::vector<Point> points_;            // capacity × max_points
  std::vector<BucketDelta> buckets_;     // capacity × max_bucket_deltas
  uint64_t seq_ = 0;                     // scrapes folded into the ring
  std::atomic<uint64_t> scrapes_{0};
  uint64_t dropped_points_ = 0;
  uint64_t dropped_series_ = 0;  // registry entries beyond max_series
};

class AlertEngine;
class FlightRecorder;

/// Owns the scrape thread: every `interval_ms` it scrapes the registry
/// into the ring, evaluates the alert engine, and (on cadence or request)
/// spills the flight-recorder segment. Start() is a no-op under
/// STREAMOP_NO_STATS — the thread entry point StreamopTimeseriesSamplerMain
/// is only compiled when stats are enabled.
class TimeSeriesSampler {
 public:
  struct Options {
    uint64_t interval_ms = 250;
    MetricRegistry* registry = nullptr;  // nullptr = process default
    TimeSeries* timeseries = nullptr;    // required
    AlertEngine* alerts = nullptr;       // optional
    FlightRecorder* recorder = nullptr;  // optional
  };

  explicit TimeSeriesSampler(Options options);
  ~TimeSeriesSampler();

  TimeSeriesSampler(const TimeSeriesSampler&) = delete;
  TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;

  Status Start();
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }

  /// One sampler tick (scrape + alert evaluation + cadence spill),
  /// callable without the thread for tests and single-shot paths.
  void TickOnce(uint64_t t_ns = NowNanos());

 private:
#ifndef STREAMOP_NO_STATS
  friend void* ::StreamopTimeseriesSamplerMain(void*);
#endif
  void Loop();

  Options options_;
  std::thread thread_;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> ticks_{0};
};

}  // namespace obs
}  // namespace streamop

#endif  // STREAMOP_OBS_TIMESERIES_H_
