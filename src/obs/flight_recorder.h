// Flight recorder: spills the metrics time-series tail, the alert board
// (states + recent transitions) and the newest spans to a small
// CRC-guarded on-disk segment, so a SIGKILLed process leaves behind the
// last minute of its own telemetry. TwoLevelRuntime loads the segment on
// the next start and surfaces it as a post-crash forensic report
// (last-K-intervals table + fired alerts) on stderr and over HTTP
// (/forensics) — the aircraft-accident workflow for a stream engine.
//
// Segment format (little-endian, mirrors the checkpoint framing of
// engine/checkpoint.h without depending on it):
//   [0..4)   magic "SOPF"
//   [4..8)   version u32
//   [8..16)  written_at_ns u64
//   [16..24) payload length u64
//   [24..28) payload CRC-32C
//   [28..32) header CRC-32C over bytes [0..28)
//   [32.. )  payload (ByteWriter sections)
// Written atomically: temp file + fsync + rename, then directory fsync —
// a torn spill can only ever lose the newest segment, never corrupt it.

#ifndef STREAMOP_OBS_FLIGHT_RECORDER_H_
#define STREAMOP_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/alerts.h"
#include "obs/span.h"
#include "obs/timeseries.h"

namespace streamop {
namespace obs {

struct FlightRecorderOptions {
  std::string dir;  // empty = disabled
  /// Spill cadence in sampler ticks (e.g. 4 ticks at 250ms = once per
  /// second). The runtime additionally requests a spill at every
  /// checkpoint write so the segment and the durable state stay in step.
  uint64_t spill_every_n_ticks = 4;
  /// How many trailing intervals each series keeps in the segment.
  size_t last_k_intervals = 48;
  /// Newest spans spilled alongside the table.
  size_t max_spans = 64;
  SpanRing* span_ring = nullptr;  // nullptr = process default
};

/// A decoded segment, independent of the live objects that produced it.
struct ForensicReport {
  bool valid = false;
  std::string path;
  uint64_t written_at_ns = 0;
  uint64_t scrapes = 0;
  uint64_t interval_ms = 0;

  struct SeriesRow {
    std::string key;
    uint8_t kind = 0;            // SeriesKind
    std::vector<uint64_t> t_ns;  // oldest first
    std::vector<double> values;  // rate/s for counters, value for gauges
  };
  std::vector<SeriesRow> rows;

  struct AlertRow {
    std::string name;
    std::string severity;
    std::string state;
    double value = 0.0;
    double threshold = 0.0;
    uint64_t times_fired = 0;
  };
  std::vector<AlertRow> alerts;

  struct TransitionRow {
    uint64_t t_ns = 0;
    std::string rule;
    std::string from;
    std::string to;
    double value = 0.0;
  };
  std::vector<TransitionRow> transitions;

  struct SpanRow {
    std::string name;
    uint64_t window_seq = 0;
    uint64_t ts_ns = 0;
    uint64_t dur_ns = 0;
    uint64_t rows = 0;
  };
  std::vector<SpanRow> spans;

  /// Number of alert rows currently firing.
  size_t fired_alerts() const;

  /// Human-readable post-crash report: fired alerts, the transition log
  /// and a last-K-intervals table of the headline series.
  std::string ToText() const;
  std::string ToJson() const;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderOptions options);

  const FlightRecorderOptions& options() const { return options_; }
  bool enabled() const { return !options_.dir.empty(); }

  /// Serializes the current telemetry tail and writes the segment
  /// atomically. Called from the sampler thread; also safe standalone.
  Status Spill(const TimeSeries& ts, const AlertEngine* alerts);

  /// Cadence gate used by the sampler: spills when `tick` hits the
  /// configured cadence or a spill was requested (checkpoint hook).
  void MaybeSpill(const TimeSeries& ts, const AlertEngine* alerts,
                  uint64_t tick);

  /// Asks the sampler to spill on its next tick — the checkpoint-cadence
  /// integration point; callable from any thread.
  void RequestSpill() {
    spill_requested_.store(true, std::memory_order_release);
  }

  uint64_t spills() const { return spills_.load(std::memory_order_relaxed); }
  uint64_t spill_failures() const {
    return spill_failures_.load(std::memory_order_relaxed);
  }
  uint64_t last_spill_ns() const {
    return last_spill_ns_.load(std::memory_order_relaxed);
  }

  std::string segment_path() const;

  /// Loads and verifies the segment under `dir`. NotFound when no segment
  /// exists; DataLoss when the file is torn or fails its CRCs.
  static Result<ForensicReport> Load(const std::string& dir);

  static constexpr uint32_t kMagic = 0x46504f53;  // "SOPF" little-endian
  static constexpr uint32_t kVersion = 1;
  static constexpr size_t kHeaderSize = 32;

 private:
  FlightRecorderOptions options_;
  std::mutex spill_mu_;
  std::atomic<bool> spill_requested_{false};
  std::atomic<uint64_t> spills_{0};
  std::atomic<uint64_t> spill_failures_{0};
  std::atomic<uint64_t> last_spill_ns_{0};
};

}  // namespace obs
}  // namespace streamop

#endif  // STREAMOP_OBS_FLIGHT_RECORDER_H_
