#include "obs/profiler.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#ifndef STREAMOP_NO_STATS
#include <dlfcn.h>
#include <errno.h>
#include <execinfo.h>
#include <signal.h>
#include <sys/time.h>
#endif

namespace streamop {
namespace obs {

namespace {

#ifndef STREAMOP_NO_STATS
// The one profiler the SIGPROF handler samples into. Set by Start(),
// cleared by Stop(); the handler tolerates a concurrent clear (it re-checks
// and bails).
std::atomic<Profiler*> g_active_profiler{nullptr};
#endif  // STREAMOP_NO_STATS

}  // namespace

#ifndef STREAMOP_NO_STATS
// External linkage on purpose: the NO_STATS CI job asserts with nm that
// this symbol is absent from the library when the observability layer is
// compiled out (and present otherwise).
void StreamopSigprofHandler(int, siginfo_t*, void*) {
  const int saved_errno = errno;
  Profiler* p = g_active_profiler.load(std::memory_order_acquire);
  if (p != nullptr) p->TakeSample();
  errno = saved_errno;
}
#endif  // STREAMOP_NO_STATS

const char* Profiler::PhaseName(uint32_t phase) {
  switch (phase) {
    case kDrain:
      return "ring_drain";
    case kBatchSelect:
      return "batch_select";
    case kAdmission:
      return "admission";
    case kClean:
      return "clean";
    case kFlush:
      return "flush";
    case kQuality:
      return "quality_report";
    default:
      return "?";
  }
}

Profiler& Profiler::Default() {
  static Profiler* p = new Profiler();
  return *p;
}

Profiler::Profiler() : Profiler(Options()) {}

Profiler::Profiler(Options options) : options_(options) {
  if (options_.hz < 1) options_.hz = 1;
  if (options_.hz > 1000) options_.hz = 1000;
  if (options_.capacity < 1) options_.capacity = 1;
  slots_ = std::make_unique<Sample[]>(options_.capacity);
}

Profiler::~Profiler() { Stop(); }

Status Profiler::Start() {
#ifdef STREAMOP_NO_STATS
  return Status::OK();
#else
  if (running_.load(std::memory_order_acquire)) return Status::OK();
  Profiler* expected = nullptr;
  if (!g_active_profiler.compare_exchange_strong(expected, this,
                                                 std::memory_order_acq_rel)) {
    return Status::AlreadyExists(
        "another profiler instance is already active");
  }
  // Force the one-time lazy initialization inside glibc's backtrace()
  // (dlopen of libgcc, unwinder setup — it allocates) here, outside the
  // signal handler, so every in-handler call is allocation-free.
  void* warm[4];
  (void)::backtrace(warm, 4);

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_sigaction = &StreamopSigprofHandler;
  sa.sa_flags = SA_RESTART | SA_SIGINFO;
  sigemptyset(&sa.sa_mask);
  if (::sigaction(SIGPROF, &sa, nullptr) != 0) {
    g_active_profiler.store(nullptr, std::memory_order_release);
    return Status::Internal("sigaction(SIGPROF): " +
                            std::string(strerror(errno)));
  }
  itimerval timer{};
  const long usec = 1000000L / options_.hz;
  timer.it_interval.tv_sec = usec / 1000000L;
  timer.it_interval.tv_usec = usec % 1000000L;
  timer.it_value = timer.it_interval;
  if (::setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    ::signal(SIGPROF, SIG_IGN);
    g_active_profiler.store(nullptr, std::memory_order_release);
    return Status::Internal("setitimer(ITIMER_PROF): " +
                            std::string(strerror(errno)));
  }
  running_.store(true, std::memory_order_release);
  return Status::OK();
#endif
}

void Profiler::Stop() {
#ifndef STREAMOP_NO_STATS
  if (!running_.load(std::memory_order_acquire)) return;
  itimerval off{};
  ::setitimer(ITIMER_PROF, &off, nullptr);
  ::signal(SIGPROF, SIG_IGN);
  g_active_profiler.store(nullptr, std::memory_order_release);
  running_.store(false, std::memory_order_release);
#endif
}

void Profiler::TakeSample() {
#ifndef STREAMOP_NO_STATS
  const uint64_t s = seq_.fetch_add(1, std::memory_order_relaxed);
  Sample& slot = slots_[s % options_.capacity];
  void* frames[kMaxFrames];
  int depth = ::backtrace(frames, kMaxFrames);
  if (depth < 0) depth = 0;
  if (depth > kMaxFrames) depth = kMaxFrames;
  slot.ts_ns.store(NowNanos(), std::memory_order_relaxed);
  for (int i = 0; i < depth; ++i) {
    slot.frames[i].store(frames[i], std::memory_order_relaxed);
  }
  slot.depth.store(depth, std::memory_order_relaxed);
#endif
}

std::string Profiler::Folded(uint64_t seconds) const {
  std::string out;
#ifdef STREAMOP_NO_STATS
  (void)seconds;
#else
  const uint64_t now = NowNanos();
  const uint64_t since =
      seconds == 0 ? 0
                   : (now > seconds * 1000000000ull
                          ? now - seconds * 1000000000ull
                          : 0);
  const uint64_t seq = seq_.load(std::memory_order_relaxed);
  const size_t n = static_cast<size_t>(std::min<uint64_t>(
      seq, static_cast<uint64_t>(options_.capacity)));

  // Aggregate identical stacks. Export-time allocation is fine — this runs
  // on the HTTP serving thread, never the pipeline.
  std::map<std::vector<void*>, uint64_t> stacks;
  std::vector<void*> key;
  for (size_t i = 0; i < n; ++i) {
    const Sample& s = slots_[i];
    const int depth = s.depth.load(std::memory_order_relaxed);
    if (depth <= 0) continue;  // torn with a concurrent handler write
    if (s.ts_ns.load(std::memory_order_relaxed) < since) continue;
    key.clear();
    for (int f = 0; f < depth; ++f) {
      key.push_back(s.frames[f].load(std::memory_order_relaxed));
    }
    ++stacks[key];
  }

  // Symbolize each distinct pc once.
  std::map<void*, std::string> names;
  auto frame_name = [&names](void* pc) -> const std::string& {
    auto it = names.find(pc);
    if (it != names.end()) return it->second;
    char buf[256];
    Dl_info info;
    if (::dladdr(pc, &info) != 0 && info.dli_sname != nullptr) {
      std::snprintf(buf, sizeof(buf), "%s", info.dli_sname);
    } else if (::dladdr(pc, &info) != 0 && info.dli_fname != nullptr) {
      const char* base = std::strrchr(info.dli_fname, '/');
      std::snprintf(buf, sizeof(buf), "%s+0x%zx",
                    base != nullptr ? base + 1 : info.dli_fname,
                    static_cast<size_t>(reinterpret_cast<uintptr_t>(pc) -
                                        reinterpret_cast<uintptr_t>(
                                            info.dli_fbase)));
    } else {
      std::snprintf(buf, sizeof(buf), "0x%zx",
                    static_cast<size_t>(reinterpret_cast<uintptr_t>(pc)));
    }
    // Folded format: ';' separates frames, ' ' separates stack from count.
    std::string name(buf);
    for (char& c : name) {
      if (c == ';' || c == ' ') c = '_';
    }
    return names.emplace(pc, std::move(name)).first->second;
  };

  for (const auto& [stack, count] : stacks) {
    // backtrace() returns leaf-first; folded wants root-first.
    for (size_t f = stack.size(); f-- > 0;) {
      out += frame_name(stack[f]);
      if (f > 0) out += ";";
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), " %llu\n",
                  static_cast<unsigned long long>(count));
    out += buf;
  }
#endif
  return out;
}

std::string Profiler::PhasesJson() const {
  std::string out = "{\"running\": ";
  out += running() ? "true" : "false";
  char buf[128];
  std::snprintf(buf, sizeof(buf), ", \"hz\": %d, \"samples\": %llu",
                options_.hz,
                static_cast<unsigned long long>(samples_recorded()));
  out += buf;
  out += ", \"phase_cycles\": {";
  for (uint32_t p = 0; p < kNumPhases; ++p) {
    std::snprintf(buf, sizeof(buf), "%s\"%s\": %llu", p > 0 ? ", " : "",
                  PhaseName(p),
                  static_cast<unsigned long long>(phase_cycles(p)));
    out += buf;
  }
  out += "}}\n";
  return out;
}

}  // namespace obs
}  // namespace streamop
