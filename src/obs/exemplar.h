// Telemetry exemplars: the engine observes itself with its own samplers.
//
// A p99 latency spike or a burst of shed/late/malformed tuples is only
// actionable if the operator can say *which* tuples were involved — but
// keeping every offending tuple would make telemetry cost proportional to
// the anomaly rate. So each latency-histogram band and each degradation
// counter (shed drops, late tuples, malformed packets) carries a small
// reservoir of representative exemplars, admitted by the same skip-based
// reservoir control (sampling/reservoir.h, Algorithm L) the query engine's
// rsample() package uses: telemetry stays O(slots) per category no matter
// the load, and admission in steady state is one position compare — no RNG
// draw, no allocation.
//
// An exemplar is a fixed-size capture: timestamp, the measured value (the
// latency, the shed probability, the packet length), the HT weight and
// window in effect, and up to four raw context dimensions (group-key
// columns for operator exemplars, packet header fields for runtime ones).
// GET /exemplars returns every reservoir as JSON.
//
// Threading: the pipeline's consumer thread is the only writer per
// category; the HTTP thread snapshots concurrently. A per-reservoir mutex
// guards only slot replacement (rare after warm-up: admission probability
// decays as slots/offered) and snapshots — the common rejected-offer path
// takes the lock too but never contends with anything except an in-flight
// export. STREAMOP_NO_STATS folds every Offer site away.

#ifndef STREAMOP_OBS_EXEMPLAR_H_
#define STREAMOP_OBS_EXEMPLAR_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sampling/reservoir.h"

namespace streamop {
namespace obs {

/// One captured exemplar. dims[] carries raw uint64 context values whose
/// meaning depends on the category (documented per call site; exported
/// verbatim).
struct Exemplar {
  uint64_t ts_ns = 0;
  double value = 0.0;
  double weight = 1.0;
  uint64_t window_seq = 0;
  std::array<uint64_t, 4> dims = {};
  uint32_t ndims = 0;
};

class ExemplarStore {
 public:
  /// Degradation-counter categories (one reservoir each).
  enum Category : uint32_t {
    kShedDrop = 0,   // dims: ts_ns, srcIP, destIP, len; value: admission p
    kLateTuple,      // dims: first key columns (raw); value: weight
    kMalformed,      // dims: ts_ns, len; value: len
    kNumCategories,
  };

  /// Latency-histogram bands: log4 from 1us; the last band is open-ended.
  static constexpr size_t kLatencyBands = 8;
  static constexpr size_t kSlotsPerReservoir = 4;

  static const char* CategoryName(uint32_t c);
  static uint32_t LatencyBand(uint64_t latency_ns);
  /// Upper bound of a band in ns (UINT64_MAX for the last, open band).
  static uint64_t LatencyBandUpperNs(uint32_t band);

  /// Process-wide default store.
  static ExemplarStore& Default();

  explicit ExemplarStore(uint64_t seed = 0x0b5e7a11);

  ExemplarStore(const ExemplarStore&) = delete;
  ExemplarStore& operator=(const ExemplarStore&) = delete;

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const {
    return kStatsEnabled && enabled_.load(std::memory_order_relaxed);
  }

  /// Offers an exemplar to a degradation-counter reservoir.
  void Offer(Category c, const Exemplar& e) {
    if constexpr (kStatsEnabled) {
      if (!enabled() || c >= kNumCategories) return;
      OfferTo(*categories_[c], e);
    }
  }

  /// Offers an exemplar to the latency band covering `latency_ns`
  /// (e.value is set to the latency for the caller).
  void OfferLatency(uint64_t latency_ns, Exemplar e) {
    if constexpr (kStatsEnabled) {
      if (!enabled()) return;
      e.value = static_cast<double>(latency_ns);
      OfferTo(*latency_bands_[LatencyBand(latency_ns)], e);
    }
  }

  /// Events ever offered to a category / band (admitted or not).
  uint64_t offered(Category c) const;
  uint64_t latency_offered(uint32_t band) const;

  /// Retained exemplars of one category / band, oldest slot first.
  std::vector<Exemplar> Snapshot(Category c) const;
  std::vector<Exemplar> LatencySnapshot(uint32_t band) const;

  /// Every reservoir as JSON:
  /// {"latency_bands": [{le_ns, offered, exemplars: [...]}...],
  ///  "counters": {"shed_drop": {...}, ...}}.
  std::string ToJson() const;

  /// Checkpoint: every reservoir (control position + slots). Takes each
  /// per-reservoir mutex, so safe against a concurrent HTTP snapshot.
  void SerializeTo(ByteWriter& w) const;
  void RestoreFrom(ByteReader& r);

 private:
  // One reservoir: the engine's own skip-based control + fixed slots.
  struct Reservoir {
    explicit Reservoir(uint64_t seed)
        : control(kSlotsPerReservoir, ReservoirControl::Mode::kSkip, seed) {}
    mutable std::mutex mu;
    ReservoirControl control;
    std::array<Exemplar, kSlotsPerReservoir> slots;
    size_t filled = 0;
    uint64_t offered = 0;
  };

  void OfferTo(Reservoir& r, const Exemplar& e);
  static void AppendReservoirJson(std::string* out, const Reservoir& r);

  std::atomic<bool> enabled_{false};
  // unique_ptr: Reservoir owns a mutex and is immovable; all allocation
  // happens here at construction, never on an Offer path.
  std::array<std::unique_ptr<Reservoir>, kNumCategories> categories_;
  std::array<std::unique_ptr<Reservoir>, kLatencyBands> latency_bands_;
};

}  // namespace obs
}  // namespace streamop

#endif  // STREAMOP_OBS_EXEMPLAR_H_
