#include "obs/alerts.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace streamop {
namespace obs {

namespace {

void AppendJsonEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
}

void AppendDouble(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

const char* CmpName(AlertRule::Cmp c) {
  switch (c) {
    case AlertRule::Cmp::kGt:
      return ">";
    case AlertRule::Cmp::kGe:
      return ">=";
    case AlertRule::Cmp::kLt:
      return "<";
    case AlertRule::Cmp::kLe:
      return "<=";
  }
  return "?";
}

const char* ExprName(AlertRule::Expr e) {
  switch (e) {
    case AlertRule::Expr::kValue:
      return "value";
    case AlertRule::Expr::kRate:
      return "rate";
    case AlertRule::Expr::kBurn:
      return "burn";
  }
  return "?";
}

}  // namespace

const char* AlertSeverityName(AlertSeverity s) {
  switch (s) {
    case AlertSeverity::kInfo:
      return "info";
    case AlertSeverity::kWarning:
      return "warning";
    case AlertSeverity::kCritical:
      return "critical";
  }
  return "?";
}

const char* AlertStateName(AlertState s) {
  switch (s) {
    case AlertState::kInactive:
      return "inactive";
    case AlertState::kPending:
      return "pending";
    case AlertState::kFiring:
      return "firing";
  }
  return "?";
}

AlertEngine::AlertEngine() : AlertEngine(Options{}) {}

AlertEngine::AlertEngine(Options options) : options_(options) {
  if (options_.max_transitions < 8) options_.max_transitions = 8;
  transitions_.resize(options_.max_transitions);
}

void AlertEngine::AddRule(const AlertRule& rule) {
  std::lock_guard<std::mutex> lock(mu_);
  RuleState rs;
  rs.rule = rule;
  if (!rs.rule.has_clear_threshold) {
    rs.rule.clear_threshold = rs.rule.threshold;
  }
  if (rs.rule.for_intervals < 1) rs.rule.for_intervals = 1;
  if (rs.rule.resolve_intervals < 1) rs.rule.resolve_intervals = 1;
  rules_.push_back(std::move(rs));
}

void AlertEngine::AddBuiltinRules() {
  auto rule = [](const char* name, AlertRule::Expr expr, const char* metric,
                 AlertRule::Cmp cmp, double threshold, uint32_t for_n,
                 AlertSeverity sev) {
    AlertRule r;
    r.name = name;
    r.expr = expr;
    r.metric = metric;
    r.cmp = cmp;
    r.threshold = threshold;
    r.for_intervals = for_n;
    r.resolve_intervals = for_n;
    r.severity = sev;
    return r;
  };
  // Degradation: the AIMD gate is dropping a meaningful share of input.
  {
    AlertRule r = rule("shed_fraction_high", AlertRule::Expr::kValue,
                       "streamop_runtime_shed_fraction", AlertRule::Cmp::kGt,
                       0.05, 2, AlertSeverity::kWarning);
    r.clear_threshold = 0.01;  // hysteresis: resolve only once well below
    r.has_clear_threshold = true;
    AddRule(r);
  }
  {
    AlertRule r = rule("shed_fraction_critical", AlertRule::Expr::kValue,
                       "streamop_runtime_shed_fraction", AlertRule::Cmp::kGt,
                       0.5, 2, AlertSeverity::kCritical);
    r.clear_threshold = 0.25;
    r.has_clear_threshold = true;
    AddRule(r);
  }
  // Backpressure: the producer is outrunning the consumer.
  AddRule(rule("ring_push_failures", AlertRule::Expr::kRate,
               "streamop_ring_push_failures_total", AlertRule::Cmp::kGt,
               1000.0, 2, AlertSeverity::kWarning));
  // Ingest integrity (per-source series aggregate under the bare name).
  AddRule(rule("ingest_gap_records", AlertRule::Expr::kRate,
               "streamop_ingest_gap_records_total", AlertRule::Cmp::kGt, 0.0,
               1, AlertSeverity::kWarning));
  AddRule(rule("ingest_duplicates", AlertRule::Expr::kRate,
               "streamop_ingest_duplicate_records_total", AlertRule::Cmp::kGt,
               0.0, 1, AlertSeverity::kInfo));
  AddRule(rule("late_tuples", AlertRule::Expr::kRate,
               "streamop_operator_late_tuples_total", AlertRule::Cmp::kGt,
               100.0, 2, AlertSeverity::kWarning));
  // Durability: degraded checkpointing means a crash now loses work.
  AddRule(rule("checkpoint_degraded", AlertRule::Expr::kValue,
               "streamop_checkpoint_degraded", AlertRule::Cmp::kGe, 1.0, 1,
               AlertSeverity::kCritical));
  AddRule(rule("checkpoint_age", AlertRule::Expr::kValue,
               "streamop_checkpoint_age_windows", AlertRule::Cmp::kGt, 16.0,
               2, AlertSeverity::kWarning));
  AddRule(rule("watchdog_fired", AlertRule::Expr::kValue,
               "streamop_runtime_watchdog_fired", AlertRule::Cmp::kGe, 1.0, 1,
               AlertSeverity::kCritical));
  // Accuracy SLO: the paper's estimators publish per-window 95% CIs; a
  // widening CI is the "answer quality is degrading" signal (PAPER.md §6).
  if (options_.quality_ci_target > 0.0) {
    AlertRule r = rule("quality_ci_width", AlertRule::Expr::kValue,
                       "streamop_quality_sum_ci95", AlertRule::Cmp::kGt,
                       options_.quality_ci_target, 2, AlertSeverity::kWarning);
    AddRule(r);
  }
}

Result<AlertRule> AlertEngine::ParseRuleLine(const std::string& line) {
  std::istringstream in(line);
  std::string tok;
  AlertRule r;
  if (!(in >> tok) || tok != "alert") {
    return Status::InvalidArgument("rule must start with 'alert'");
  }
  if (!(in >> r.name)) return Status::InvalidArgument("missing rule name");
  if (!(in >> tok) || tok != "if") {
    return Status::InvalidArgument("expected 'if' after the rule name");
  }
  // Expression: value(metric) | rate(metric) | burn(num, den). The
  // operand may contain spaces only after a comma (burn).
  std::string expr;
  if (!(in >> expr)) return Status::InvalidArgument("missing expression");
  while (expr.find('(') != std::string::npos &&
         expr.find(')') == std::string::npos && (in >> tok)) {
    expr += tok;
  }
  const size_t open = expr.find('(');
  const size_t close = expr.rfind(')');
  if (open == std::string::npos || close == std::string::npos ||
      close < open) {
    return Status::InvalidArgument("malformed expression: " + expr);
  }
  const std::string fn = expr.substr(0, open);
  const std::string args = expr.substr(open + 1, close - open - 1);
  if (fn == "value") {
    r.expr = AlertRule::Expr::kValue;
    r.metric = args;
  } else if (fn == "rate") {
    r.expr = AlertRule::Expr::kRate;
    r.metric = args;
  } else if (fn == "burn") {
    r.expr = AlertRule::Expr::kBurn;
    const size_t comma = args.find(',');
    if (comma == std::string::npos) {
      return Status::InvalidArgument("burn() needs two metrics: " + expr);
    }
    r.metric = args.substr(0, comma);
    r.denom_metric = args.substr(comma + 1);
  } else {
    return Status::InvalidArgument("unknown expression '" + fn +
                                   "' (want value/rate/burn)");
  }
  if (!(in >> tok)) return Status::InvalidArgument("missing comparator");
  if (tok == ">") {
    r.cmp = AlertRule::Cmp::kGt;
  } else if (tok == ">=") {
    r.cmp = AlertRule::Cmp::kGe;
  } else if (tok == "<") {
    r.cmp = AlertRule::Cmp::kLt;
  } else if (tok == "<=") {
    r.cmp = AlertRule::Cmp::kLe;
  } else {
    return Status::InvalidArgument("unknown comparator '" + tok + "'");
  }
  if (!(in >> r.threshold)) {
    return Status::InvalidArgument("missing threshold");
  }
  bool have_severity = false;
  while (in >> tok) {
    if (tok == "for") {
      if (!(in >> r.for_intervals) || r.for_intervals < 1) {
        return Status::InvalidArgument("'for' needs a positive count");
      }
    } else if (tok == "resolve") {
      if (!(in >> r.resolve_intervals) || r.resolve_intervals < 1) {
        return Status::InvalidArgument("'resolve' needs a positive count");
      }
    } else if (tok == "clear") {
      if (!(in >> r.clear_threshold)) {
        return Status::InvalidArgument("'clear' needs a value");
      }
      r.has_clear_threshold = true;
    } else if (tok == "over") {
      if (!(in >> r.window_s) || r.window_s <= 0) {
        return Status::InvalidArgument("'over' needs positive seconds");
      }
    } else if (tok == "severity") {
      if (!(in >> tok)) return Status::InvalidArgument("missing severity");
      if (tok == "info") {
        r.severity = AlertSeverity::kInfo;
      } else if (tok == "warning") {
        r.severity = AlertSeverity::kWarning;
      } else if (tok == "critical") {
        r.severity = AlertSeverity::kCritical;
      } else {
        return Status::InvalidArgument("unknown severity '" + tok + "'");
      }
      have_severity = true;
    } else {
      return Status::InvalidArgument("unknown keyword '" + tok + "'");
    }
  }
  if (!have_severity) {
    return Status::InvalidArgument("rule needs 'severity <level>'");
  }
  return r;
}

Status AlertEngine::AddRulesFromText(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    bool blank = true;
    for (char c : line) {
      if (c != ' ' && c != '\t' && c != '\r') {
        blank = false;
        break;
      }
    }
    if (blank) continue;
    Result<AlertRule> rule = ParseRuleLine(line);
    if (!rule.ok()) {
      return Status::InvalidArgument("alert rules line " +
                                     std::to_string(lineno) + ": " +
                                     rule.status().message());
    }
    AddRule(*rule);
  }
  return Status::OK();
}

double AlertEngine::EvalExpr(const AlertRule& rule,
                             const TimeSeries& ts) const {
  switch (rule.expr) {
    case AlertRule::Expr::kValue:
      return ts.MaxValue(rule.metric);
    case AlertRule::Expr::kRate:
      return ts.Rate(rule.metric, rule.window_s);
    case AlertRule::Expr::kBurn: {
      const double num = ts.Rate(rule.metric, rule.window_s);
      const double den = ts.Rate(rule.denom_metric, rule.window_s);
      if (!std::isfinite(num) || !std::isfinite(den) || den <= 0.0) {
        return std::nan("");
      }
      return num / den;
    }
  }
  return std::nan("");
}

bool AlertEngine::Crossed(const AlertRule& rule, double value,
                          bool clearing) const {
  if (!std::isfinite(value)) return false;
  const double threshold =
      clearing ? rule.clear_threshold : rule.threshold;
  switch (rule.cmp) {
    case AlertRule::Cmp::kGt:
      return value > threshold;
    case AlertRule::Cmp::kGe:
      return value >= threshold;
    case AlertRule::Cmp::kLt:
      return value < threshold;
    case AlertRule::Cmp::kLe:
      return value <= threshold;
  }
  return false;
}

void AlertEngine::Record(uint64_t t_ns, const RuleState& rs, AlertState from,
                         AlertState to) {
  AlertTransition& t = transitions_[log_next_];
  t.t_ns = t_ns;
  t.rule = rs.rule.name;
  t.from = from;
  t.to = to;
  t.value = rs.last_value;
  log_next_ = (log_next_ + 1) % transitions_.size();
  ++log_total_;
}

void AlertEngine::Evaluate(const TimeSeries& ts, uint64_t t_ns) {
  if constexpr (!kStatsEnabled) {
    (void)ts;
    (void)t_ns;
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  size_t critical = 0;
  for (RuleState& rs : rules_) {
    rs.last_value = EvalExpr(rs.rule, ts);
    const bool firing_test = Crossed(rs.rule, rs.last_value, false);
    switch (rs.state) {
      case AlertState::kInactive:
        if (firing_test) {
          rs.consecutive_true = 1;
          if (rs.consecutive_true >= rs.rule.for_intervals) {
            Record(t_ns, rs, AlertState::kInactive, AlertState::kFiring);
            rs.state = AlertState::kFiring;
            rs.consecutive_clear = 0;
            ++rs.times_fired;
          } else {
            Record(t_ns, rs, AlertState::kInactive, AlertState::kPending);
            rs.state = AlertState::kPending;
          }
          rs.since_ns = t_ns;
        }
        break;
      case AlertState::kPending:
        if (firing_test) {
          ++rs.consecutive_true;
          if (rs.consecutive_true >= rs.rule.for_intervals) {
            Record(t_ns, rs, AlertState::kPending, AlertState::kFiring);
            rs.state = AlertState::kFiring;
            rs.since_ns = t_ns;
            rs.consecutive_clear = 0;
            ++rs.times_fired;
          }
        } else {
          Record(t_ns, rs, AlertState::kPending, AlertState::kInactive);
          rs.state = AlertState::kInactive;
          rs.since_ns = t_ns;
          rs.consecutive_true = 0;
        }
        break;
      case AlertState::kFiring:
        // Hysteresis: the clear test uses clear_threshold, and the
        // condition must stay clear for resolve_intervals evaluations.
        if (!Crossed(rs.rule, rs.last_value, true)) {
          ++rs.consecutive_clear;
          if (rs.consecutive_clear >= rs.rule.resolve_intervals) {
            Record(t_ns, rs, AlertState::kFiring, AlertState::kInactive);
            rs.state = AlertState::kInactive;
            rs.since_ns = t_ns;
            rs.consecutive_true = 0;
            rs.consecutive_clear = 0;
          }
        } else {
          rs.consecutive_clear = 0;
        }
        break;
    }
    if (rs.state == AlertState::kFiring &&
        rs.rule.severity == AlertSeverity::kCritical) {
      ++critical;
    }
  }
  ++evaluations_;
  critical_firing_.store(critical, std::memory_order_release);
}

size_t AlertEngine::num_rules() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rules_.size();
}

uint64_t AlertEngine::evaluations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evaluations_;
}

std::vector<AlertStatus> AlertEngine::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AlertStatus> out;
  out.reserve(rules_.size());
  for (const RuleState& rs : rules_) {
    AlertStatus st;
    st.rule = rs.rule;
    st.state = rs.state;
    st.last_value = rs.last_value;
    st.since_ns = rs.since_ns;
    st.consecutive_true = rs.consecutive_true;
    st.consecutive_clear = rs.consecutive_clear;
    st.times_fired = rs.times_fired;
    out.push_back(std::move(st));
  }
  return out;
}

std::vector<AlertTransition> AlertEngine::Transitions() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AlertTransition> out;
  const size_t n = std::min<uint64_t>(log_total_, transitions_.size());
  out.reserve(n);
  // Oldest first: the ring's next write slot is the oldest entry once the
  // log has wrapped.
  const size_t start =
      log_total_ >= transitions_.size() ? log_next_ : 0;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(transitions_[(start + i) % transitions_.size()]);
  }
  return out;
}

AlertSummary AlertEngine::Summary() const {
  std::lock_guard<std::mutex> lock(mu_);
  AlertSummary s;
  for (const RuleState& rs : rules_) {
    if (rs.state == AlertState::kFiring) {
      ++s.firing;
      if (rs.rule.severity == AlertSeverity::kCritical) ++s.critical_firing;
      if (rs.rule.severity > s.worst) s.worst = rs.rule.severity;
    } else if (rs.state == AlertState::kPending) {
      ++s.pending;
    }
  }
  return s;
}

bool AlertEngine::critical_firing() const {
  return critical_firing_.load(std::memory_order_acquire) > 0;
}

std::string AlertEngine::ToJson() const {
  const std::vector<AlertStatus> rules = Snapshot();
  const std::vector<AlertTransition> transitions = Transitions();
  const AlertSummary summary = Summary();
  std::string out = "{\"summary\": {\"firing\": ";
  out += std::to_string(summary.firing);
  out += ", \"pending\": " + std::to_string(summary.pending);
  out += ", \"critical_firing\": " + std::to_string(summary.critical_firing);
  out += ", \"worst_severity\": \"";
  out += summary.firing > 0 ? AlertSeverityName(summary.worst) : "none";
  out += "\"}, \"rules\": [";
  for (size_t i = 0; i < rules.size(); ++i) {
    const AlertStatus& st = rules[i];
    if (i) out += ", ";
    out += "{\"name\": \"";
    AppendJsonEscaped(out, st.rule.name);
    out += "\", \"expr\": \"";
    out += ExprName(st.rule.expr);
    out += "(";
    AppendJsonEscaped(out, st.rule.metric);
    if (st.rule.expr == AlertRule::Expr::kBurn) {
      out += ", ";
      AppendJsonEscaped(out, st.rule.denom_metric);
    }
    out += ") ";
    out += CmpName(st.rule.cmp);
    out += " ";
    AppendDouble(out, st.rule.threshold);
    out += "\", \"severity\": \"";
    out += AlertSeverityName(st.rule.severity);
    out += "\", \"state\": \"";
    out += AlertStateName(st.state);
    out += "\", \"value\": ";
    AppendDouble(out, st.last_value);
    out += ", \"threshold\": ";
    AppendDouble(out, st.rule.threshold);
    out += ", \"clear_threshold\": ";
    AppendDouble(out, st.rule.clear_threshold);
    out += ", \"for\": " + std::to_string(st.rule.for_intervals);
    out += ", \"resolve\": " + std::to_string(st.rule.resolve_intervals);
    out += ", \"since_ms\": " + std::to_string(st.since_ns / 1000000);
    out += ", \"times_fired\": " + std::to_string(st.times_fired);
    out += "}";
  }
  out += "], \"transitions\": [";
  for (size_t i = 0; i < transitions.size(); ++i) {
    const AlertTransition& t = transitions[i];
    if (i) out += ", ";
    out += "{\"t_ms\": " + std::to_string(t.t_ns / 1000000);
    out += ", \"rule\": \"";
    AppendJsonEscaped(out, t.rule);
    out += "\", \"from\": \"";
    out += AlertStateName(t.from);
    out += "\", \"to\": \"";
    out += AlertStateName(t.to);
    out += "\", \"value\": ";
    AppendDouble(out, t.value);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace obs
}  // namespace streamop
