// Bounded trace-event ring: window flushes, cleaning phases and subset-sum
// threshold (z) adjustments recorded as fixed-size slots and exported as
// chrome-trace JSON (open chrome://tracing or https://ui.perfetto.dev).
//
// The ring is disabled by default (a single relaxed bool load per record
// site); when enabled, Record() claims a slot with one relaxed fetch_add
// and writes in place — no allocation, oldest events overwritten. Event
// names must be string literals (the ring stores the pointer).
//
// Slot fields are individually atomic (relaxed), so a /traces export on the
// serving thread never races a pipeline writer: a snapshot overlapping a
// write (or a wraparound overwrite) sees a torn event at worst — the
// exporters tolerate that — never a data race.

#ifndef STREAMOP_OBS_TRACE_RING_H_
#define STREAMOP_OBS_TRACE_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace streamop {
namespace obs {

struct TraceEvent {
  const char* name = nullptr;   // static string (never freed)
  uint64_t ts_ns = 0;           // steady-clock timestamp
  uint64_t dur_ns = 0;          // 0 for instant events
  bool instant = false;
  const char* arg_name = nullptr;  // optional numeric argument
  double arg = 0.0;
};

class TraceRing {
 public:
  /// Process-wide default ring, shared by the operator and the SFUN
  /// packages (which have no other channel to the observability layer).
  static TraceRing& Default();

  explicit TraceRing(size_t capacity = 8192);

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const {
    return kStatsEnabled && enabled_.load(std::memory_order_relaxed);
  }

  /// Records a complete ("ph":"X") event of duration dur_ns ending now-ish.
  void Record(const char* name, uint64_t ts_ns, uint64_t dur_ns) {
    if constexpr (kStatsEnabled) {
      if (!enabled()) return;
      TraceEvent e;
      e.name = name;
      e.ts_ns = ts_ns;
      e.dur_ns = dur_ns;
      Put(e);
    }
  }

  /// Records an instant ("ph":"i") event with one optional numeric arg.
  void Instant(const char* name, uint64_t ts_ns,
               const char* arg_name = nullptr, double arg = 0.0) {
    if constexpr (kStatsEnabled) {
      if (!enabled()) return;
      TraceEvent e;
      e.name = name;
      e.ts_ns = ts_ns;
      e.instant = true;
      e.arg_name = arg_name;
      e.arg = arg;
      Put(e);
    }
  }

  /// Total events ever recorded (>= capacity means overwrites happened).
  uint64_t events_recorded() const {
    return seq_.load(std::memory_order_relaxed);
  }
  size_t capacity() const { return cap_; }

  /// Copies out the retained events, oldest first by timestamp.
  std::vector<TraceEvent> Snapshot() const;

  /// Chrome trace format: {"traceEvents": [...]}; timestamps rebased to
  /// the earliest retained event, in microseconds.
  std::string ToChromeTraceJson() const;

 private:
  // Individually-atomic mirror of TraceEvent: writers store relaxed,
  // snapshots load relaxed, so wraparound overwrites during a concurrent
  // export are torn-at-worst instead of racy.
  struct Slot {
    std::atomic<const char*> name{nullptr};
    std::atomic<uint64_t> ts_ns{0};
    std::atomic<uint64_t> dur_ns{0};
    std::atomic<bool> instant{false};
    std::atomic<const char*> arg_name{nullptr};
    std::atomic<double> arg{0.0};
  };

  void Put(const TraceEvent& e) {
    const uint64_t s = seq_.fetch_add(1, std::memory_order_relaxed);
    Slot& slot = slots_[s % cap_];
    slot.name.store(e.name, std::memory_order_relaxed);
    slot.ts_ns.store(e.ts_ns, std::memory_order_relaxed);
    slot.dur_ns.store(e.dur_ns, std::memory_order_relaxed);
    slot.instant.store(e.instant, std::memory_order_relaxed);
    slot.arg_name.store(e.arg_name, std::memory_order_relaxed);
    slot.arg.store(e.arg, std::memory_order_relaxed);
  }

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> seq_{0};
  // Slots hold atomics (not movable): plain array instead of vector.
  std::unique_ptr<Slot[]> slots_;
  size_t cap_ = 0;
};

}  // namespace obs
}  // namespace streamop

#endif  // STREAMOP_OBS_TRACE_RING_H_
