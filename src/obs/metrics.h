// Engine-wide metrics: a registry of named counters, gauges and log-linear
// latency histograms backing the paper's §7-style evaluation (CPU at line
// rate, drop behaviour under overload, per-window sampler work) with
// machine-readable export.
//
// Design constraints (DESIGN.md §7):
//  * Heap-free after registration: metric objects live in deques owned by
//    the registry (stable addresses); recording touches only fixed-size
//    atomics, so the operator hot path stays allocation-free.
//  * Relaxed atomics everywhere: RunThreaded's producer and consumer share
//    the registry; each individual metric has a single writer, readers
//    (snapshot/export) tolerate slightly stale values.
//  * Compile-out switch: building with -DSTREAMOP_NO_STATS turns every
//    record/increment into a no-op (kStatsEnabled folds the call sites
//    away) for overhead A/B measurement.

#ifndef STREAMOP_OBS_METRICS_H_
#define STREAMOP_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace streamop {
namespace obs {

#ifdef STREAMOP_NO_STATS
inline constexpr bool kStatsEnabled = false;
#else
inline constexpr bool kStatsEnabled = true;
#endif

inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Monotonic counter. Single logical writer; relaxed increments.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    if constexpr (kStatsEnabled) v_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Point-in-time value (load factor, high-water mark). Set/SetMax assume a
/// single writer (the owning thread); readers see the latest stored value.
class Gauge {
 public:
  void Set(double v) {
    if constexpr (kStatsEnabled) v_.store(v, std::memory_order_relaxed);
  }
  /// Keeps the maximum seen (single-writer: plain load-compare-store).
  void SetMax(double v) {
    if constexpr (kStatsEnabled) {
      if (v > v_.load(std::memory_order_relaxed)) {
        v_.store(v, std::memory_order_relaxed);
      }
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Log-linear histogram over uint64 values (nanoseconds, sizes): each
/// power-of-two octave is split into kSubBuckets linear sub-buckets, so
/// relative bucket width is <= 25% across the full 64-bit range with a
/// fixed 252-slot array — no allocation on Record, ever.
class Histogram {
 public:
  static constexpr size_t kSubBucketBits = 2;
  static constexpr size_t kSubBuckets = 1u << kSubBucketBits;  // 4
  // Linear region [0, 2*kSubBuckets) + one kSubBuckets-wide row per octave.
  static constexpr size_t kNumBuckets = (64 - kSubBucketBits) * kSubBuckets;

  static size_t BucketIndex(uint64_t v) {
    if (v < 2 * kSubBuckets) return static_cast<size_t>(v);
    const size_t msb = 63 - static_cast<size_t>(std::countl_zero(v));
    const size_t shift = msb - kSubBucketBits;
    const size_t sub = static_cast<size_t>(v >> shift) & (kSubBuckets - 1);
    return (shift + 1) * kSubBuckets + sub;
  }

  /// Exclusive upper bound of bucket i (values land in [lb, ub)).
  static uint64_t BucketUpperBound(size_t i) {
    if (i < 2 * kSubBuckets) return static_cast<uint64_t>(i) + 1;
    const size_t shift = i / kSubBuckets - 1;
    const uint64_t sub = i % kSubBuckets;
    return (kSubBuckets + sub + 1) << shift;
  }

  void Record(uint64_t v) {
    if constexpr (kStatsEnabled) {
      buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
      count_.fetch_add(1, std::memory_order_relaxed);
      sum_.fetch_add(v, std::memory_order_relaxed);
      if (v > max_.load(std::memory_order_relaxed)) {
        max_.store(v, std::memory_order_relaxed);  // single-writer max
      }
    }
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  double mean() const {
    uint64_t c = count();
    return c > 0 ? static_cast<double>(sum()) / static_cast<double>(c) : 0.0;
  }

  /// Upper bound of the bucket holding the q-quantile (q in [0,1]).
  uint64_t ValueAtQuantile(double q) const;

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// Times a scope into a histogram; a null histogram (or STREAMOP_NO_STATS)
/// makes it a complete no-op, clock reads included.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h) : h_(h) {
    if constexpr (kStatsEnabled) {
      if (h_ != nullptr) t0_ = NowNanos();
    }
  }
  ~ScopedTimer() {
    if constexpr (kStatsEnabled) {
      if (h_ != nullptr) h_->Record(NowNanos() - t0_);
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* h_;
  uint64_t t0_ = 0;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One registry entry as seen by Visit(): borrowed references, valid only
/// inside the callback (the registry mutex is held across the visit).
struct MetricRef {
  const std::string& name;
  const std::string& labels;
  MetricKind kind;
  const Counter* counter;      // non-null iff kind == kCounter
  const Gauge* gauge;          // non-null iff kind == kGauge
  const Histogram* histogram;  // non-null iff kind == kHistogram
};

/// Named metric registry. Registration (GetCounter/GetGauge/GetHistogram)
/// is mutex-protected and idempotent per (name, labels); it happens at
/// component construction, never on the hot path. Metric objects live in
/// deques, so returned pointers stay valid for the registry's lifetime.
///
/// Naming scheme: `streamop_<layer>_<name>` with an optional preformatted
/// label string such as `node="low"` (DESIGN.md §7).
class MetricRegistry {
 public:
  /// Process-wide default registry used when a component is not handed an
  /// explicit one. Lives forever, so metric pointers never dangle.
  static MetricRegistry& Default();

  Counter* GetCounter(const std::string& name, const std::string& labels = "");
  Gauge* GetGauge(const std::string& name, const std::string& labels = "");
  Histogram* GetHistogram(const std::string& name,
                          const std::string& labels = "");

  /// JSON snapshot: {"counters": {...}, "gauges": {...}, "histograms":
  /// {name: {count, sum, max, mean, p50, p90, p99, buckets: [[ub, n]...]}}}.
  std::string ToJson() const;

  /// Prometheus text exposition format (one # TYPE line per family, all
  /// samples of a family grouped together).
  std::string ToPrometheus() const;

  size_t num_metrics() const;

  /// Enumerates every entry in registration order under the registry
  /// mutex — the scrape path of the time-series ring (obs/timeseries.h).
  /// The callback must not call back into the registry.
  void Visit(const std::function<void(const MetricRef&)>& fn) const;

 private:
  using Kind = MetricKind;
  struct Entry {
    std::string name;
    std::string labels;
    Kind kind;
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    Histogram* histogram = nullptr;
  };

  Entry* Find(const std::string& name, const std::string& labels);

  mutable std::mutex mu_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::vector<Entry> entries_;  // registration order
};

// ---------------------------------------------------------------------------
// Instrumentation bundles: structs of registry-owned metric pointers that
// components hold by value. A default-constructed bundle (all null) means
// "not instrumented"; call sites guard with `enabled()` which constant-
// folds to false under STREAMOP_NO_STATS.
// ---------------------------------------------------------------------------

/// RingBuffer data-path metrics (producer side writes hwm).
struct RingBufferMetrics {
  Counter* pushes = nullptr;         // successful TryPush
  Counter* push_failures = nullptr;  // TryPush on a full ring
  Counter* pops = nullptr;           // successful TryPop
  Gauge* occupancy_hwm = nullptr;    // high-water mark of size()

  bool enabled() const { return kStatsEnabled && pushes != nullptr; }
  static RingBufferMetrics Create(MetricRegistry& reg,
                                  const std::string& labels = "");
};

/// Per-query-node metrics maintained by the runtime layer.
struct NodeMetrics {
  Counter* tuples_in = nullptr;
  Counter* tuples_out = nullptr;
  Counter* cpu_ns = nullptr;
  Counter* batches = nullptr;
  Histogram* batch_latency_ns = nullptr;  // per-batch processing time
  Histogram* batch_fill = nullptr;        // rows per consumed batch — low
                                          // fill means the drain loop runs
                                          // starved, partial batches

  bool enabled() const { return kStatsEnabled && tuples_in != nullptr; }
  static NodeMetrics Create(MetricRegistry& reg, const std::string& node_name);
};

/// SamplingOperator metrics: per-phase timing + sampler work accounting.
/// The admission histogram is sampled 1-in-256 tuples so its two clock
/// reads amortize below the 2% ns/tuple overhead budget; cleaning and
/// flush phases are rare and timed on every occurrence.
struct OperatorMetrics {
  Counter* tuples = nullptr;            // Process() calls
  Counter* admitted = nullptr;          // tuples passing WHERE
  Counter* groups_created = nullptr;
  Counter* groups_removed = nullptr;
  Counter* cleaning_phases = nullptr;
  Counter* windows = nullptr;           // FlushWindow calls
  Counter* rows_out = nullptr;          // output rows emitted
  Counter* superagg_updates = nullptr;  // SuperAggState::OnTuple calls
  Counter* sfun_calls = nullptr;        // stateful-function invocations
  Counter* late_tuples = nullptr;       // clamped non-monotonic arrivals
  Histogram* admission_ns = nullptr;    // per-tuple path, sampled 1/256
  Histogram* cleaning_ns = nullptr;     // per cleaning phase
  Histogram* flush_ns = nullptr;        // per window flush
  Gauge* group_table_load_factor = nullptr;  // at window close
  Gauge* peak_groups = nullptr;              // high-water mark of live groups

  // Sample-quality gauges, refreshed once per window flush from the
  // WindowQualityReport (the per-window history lives in the QualityRing;
  // these expose the latest window to /metrics scrapes). Worst case across
  // the window's supergroups is reported.
  Gauge* quality_sum_ci95 = nullptr;          // widest sum$ 95% CI half-width
  Gauge* quality_threshold_z = nullptr;       // largest subset-sum threshold
  Gauge* quality_freq_error_bound = nullptr;  // lossy counting eps*N bound
  Gauge* quality_distinct_rel_error = nullptr;  // KMV/distinct ~1/sqrt(k)
  Gauge* quality_coverage = nullptr;          // smallest reservoir coverage
  Gauge* quality_shed_p_min = nullptr;        // worst admission probability

  bool enabled() const { return kStatsEnabled && tuples != nullptr; }
  static OperatorMetrics Create(MetricRegistry& reg,
                                const std::string& node_name);
};

/// StreamSource metrics (tuples produced).
struct SourceMetrics {
  Counter* tuples = nullptr;

  bool enabled() const { return kStatsEnabled && tuples != nullptr; }
  static SourceMetrics Create(MetricRegistry& reg,
                              const std::string& source_name);
};

/// Network/file ingest metrics (stream/resumable_source.h): frame and
/// record flow, connection churn, sequence anomalies, and the durable
/// offset the crash-recovery handshake would resume from. offset_lag is
/// how far the consumer trails the producer's announced head (records) or
/// the file end (bytes) — the first gauge to watch on a slow consumer.
struct IngestSourceMetrics {
  Counter* frames = nullptr;            // well-formed frames / pcap records
  Counter* records = nullptr;           // PacketRecords delivered
  Counter* malformed_frames = nullptr;  // quarantined frames
  Counter* reconnects = nullptr;        // socket reconnects / HELLO nudges
  Counter* gaps = nullptr;              // sequence gaps detected
  Counter* gap_records = nullptr;       // records lost to gaps
  Counter* duplicates = nullptr;        // duplicate/reordered records dropped
  Counter* heartbeats = nullptr;        // idle reads (timeout, no data)
  Gauge* durable_offset = nullptr;      // current resumable offset
  Gauge* resume_offset = nullptr;       // offset of the last (re)start
  Gauge* offset_lag = nullptr;          // producer head - durable offset

  bool enabled() const { return kStatsEnabled && frames != nullptr; }
  static IngestSourceMetrics Create(MetricRegistry& reg,
                                    const std::string& source_name);
};

}  // namespace obs
}  // namespace streamop

#endif  // STREAMOP_OBS_METRICS_H_
