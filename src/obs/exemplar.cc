#include "obs/exemplar.h"

#include <cstdio>

namespace streamop {
namespace obs {

const char* ExemplarStore::CategoryName(uint32_t c) {
  switch (c) {
    case kShedDrop:
      return "shed_drop";
    case kLateTuple:
      return "late_tuple";
    case kMalformed:
      return "malformed";
    default:
      return "?";
  }
}

uint32_t ExemplarStore::LatencyBand(uint64_t latency_ns) {
  // log4 bands from 1us: [0,1us) [1,4) [4,16) [16,64) [64,256) [256us,1ms)
  // [1,4ms) [4ms,inf).
  uint64_t bound = 1000;
  for (uint32_t band = 0; band + 1 < kLatencyBands; ++band) {
    if (latency_ns < bound) return band;
    bound *= 4;
  }
  return kLatencyBands - 1;
}

uint64_t ExemplarStore::LatencyBandUpperNs(uint32_t band) {
  if (band + 1 >= kLatencyBands) return UINT64_MAX;
  uint64_t bound = 1000;
  for (uint32_t b = 0; b < band; ++b) bound *= 4;
  return bound;
}

ExemplarStore& ExemplarStore::Default() {
  static ExemplarStore* store = new ExemplarStore();
  return *store;
}

ExemplarStore::ExemplarStore(uint64_t seed) {
  for (uint32_t c = 0; c < kNumCategories; ++c) {
    categories_[c] = std::make_unique<Reservoir>(seed + c);
  }
  for (uint32_t b = 0; b < kLatencyBands; ++b) {
    latency_bands_[b] = std::make_unique<Reservoir>(seed + 0x100 + b);
  }
}

void ExemplarStore::OfferTo(Reservoir& r, const Exemplar& e) {
  std::lock_guard<std::mutex> lock(r.mu);
  ++r.offered;
  if (!r.control.Offer()) return;
  const size_t idx = r.filled < kSlotsPerReservoir
                         ? r.filled++
                         : static_cast<size_t>(r.control.ReplaceIndex());
  r.slots[idx] = e;
}

uint64_t ExemplarStore::offered(Category c) const {
  if (c >= kNumCategories) return 0;
  const Reservoir& r = *categories_[c];
  std::lock_guard<std::mutex> lock(r.mu);
  return r.offered;
}

uint64_t ExemplarStore::latency_offered(uint32_t band) const {
  if (band >= kLatencyBands) return 0;
  const Reservoir& r = *latency_bands_[band];
  std::lock_guard<std::mutex> lock(r.mu);
  return r.offered;
}

std::vector<Exemplar> ExemplarStore::Snapshot(Category c) const {
  std::vector<Exemplar> out;
  if (c >= kNumCategories) return out;
  const Reservoir& r = *categories_[c];
  std::lock_guard<std::mutex> lock(r.mu);
  out.assign(r.slots.begin(), r.slots.begin() + r.filled);
  return out;
}

std::vector<Exemplar> ExemplarStore::LatencySnapshot(uint32_t band) const {
  std::vector<Exemplar> out;
  if (band >= kLatencyBands) return out;
  const Reservoir& r = *latency_bands_[band];
  std::lock_guard<std::mutex> lock(r.mu);
  out.assign(r.slots.begin(), r.slots.begin() + r.filled);
  return out;
}

void ExemplarStore::AppendReservoirJson(std::string* out, const Reservoir& r) {
  std::lock_guard<std::mutex> lock(r.mu);
  char buf[256];
  std::snprintf(buf, sizeof(buf), "\"offered\": %llu, \"exemplars\": [",
                static_cast<unsigned long long>(r.offered));
  *out += buf;
  for (size_t i = 0; i < r.filled; ++i) {
    const Exemplar& e = r.slots[i];
    if (i > 0) *out += ", ";
    std::snprintf(buf, sizeof(buf),
                  "{\"ts_ns\": %llu, \"value\": %.6g, \"weight\": %.6g, "
                  "\"window_seq\": %llu, \"dims\": [",
                  static_cast<unsigned long long>(e.ts_ns), e.value, e.weight,
                  static_cast<unsigned long long>(e.window_seq));
    *out += buf;
    for (uint32_t d = 0; d < e.ndims && d < e.dims.size(); ++d) {
      std::snprintf(buf, sizeof(buf), "%s%llu", d > 0 ? ", " : "",
                    static_cast<unsigned long long>(e.dims[d]));
      *out += buf;
    }
    *out += "]}";
  }
  *out += "]";
}

std::string ExemplarStore::ToJson() const {
  std::string out = "{\"latency_bands\": [";
  char buf[96];
  for (uint32_t b = 0; b < kLatencyBands; ++b) {
    if (b > 0) out += ",";
    const uint64_t le = LatencyBandUpperNs(b);
    if (le == UINT64_MAX) {
      out += "\n {\"le_ns\": \"+Inf\", ";
    } else {
      std::snprintf(buf, sizeof(buf), "\n {\"le_ns\": %llu, ",
                    static_cast<unsigned long long>(le));
      out += buf;
    }
    AppendReservoirJson(&out, *latency_bands_[b]);
    out += "}";
  }
  out += "\n], \"counters\": {";
  for (uint32_t c = 0; c < kNumCategories; ++c) {
    if (c > 0) out += ",";
    std::snprintf(buf, sizeof(buf), "\n \"%s\": {", CategoryName(c));
    out += buf;
    AppendReservoirJson(&out, *categories_[c]);
    out += "}";
  }
  out += "\n}}\n";
  return out;
}

namespace {

void SerializeReservoir(const ExemplarStore* store, ByteWriter& w,
                        const std::mutex& mu, const ReservoirControl& control,
                        const Exemplar* slots, size_t nslots, size_t filled,
                        uint64_t offered) {
  (void)store;
  std::lock_guard<std::mutex> lock(const_cast<std::mutex&>(mu));
  control.SerializeTo(w);
  w.U64(filled);
  w.U64(offered);
  w.U64(nslots);
  for (size_t i = 0; i < nslots; ++i) {
    const Exemplar& e = slots[i];
    w.U64(e.ts_ns);
    w.F64(e.value);
    w.F64(e.weight);
    w.U64(e.window_seq);
    for (uint64_t d : e.dims) w.U64(d);
    w.U32(e.ndims);
  }
}

}  // namespace

void ExemplarStore::SerializeTo(ByteWriter& w) const {
  w.U64(kNumCategories);
  for (const auto& r : categories_) {
    SerializeReservoir(this, w, r->mu, r->control, r->slots.data(),
                       r->slots.size(), r->filled, r->offered);
  }
  w.U64(kLatencyBands);
  for (const auto& r : latency_bands_) {
    SerializeReservoir(this, w, r->mu, r->control, r->slots.data(),
                       r->slots.size(), r->filled, r->offered);
  }
}

void ExemplarStore::RestoreFrom(ByteReader& r) {
  auto restore_one = [&r](Reservoir& res) {
    std::lock_guard<std::mutex> lock(res.mu);
    res.control.RestoreFrom(r);
    res.filled = static_cast<size_t>(r.U64());
    if (res.filled > kSlotsPerReservoir) res.filled = kSlotsPerReservoir;
    res.offered = r.U64();
    uint64_t nslots = r.U64();
    for (uint64_t i = 0; i < nslots; ++i) {
      Exemplar e;
      e.ts_ns = r.U64();
      e.value = r.F64();
      e.weight = r.F64();
      e.window_seq = r.U64();
      for (uint64_t& d : e.dims) d = r.U64();
      e.ndims = r.U32();
      if (i < res.slots.size()) res.slots[i] = e;
    }
  };
  uint64_t ncat = r.U64();
  for (uint64_t c = 0; c < ncat && c < kNumCategories; ++c) {
    restore_one(*categories_[c]);
  }
  // Snapshots from a build with more categories than ours cannot be mapped;
  // the count mismatch poisons the reader and the caller discards the load.
  if (ncat != kNumCategories) {
    r.MarkFailed();
    return;
  }
  uint64_t nbands = r.U64();
  if (nbands != kLatencyBands) {
    r.MarkFailed();
    return;
  }
  for (uint64_t b = 0; b < nbands; ++b) restore_one(*latency_bands_[b]);
}

}  // namespace obs
}  // namespace streamop
