// Per-window sample-quality reports: how good is the sample *right now*?
//
// Every sampling algorithm the operator hosts admits an analytic error
// bound — Duffield-Lund-Thorup threshold sampling deviates from the true
// subset sum by at most one threshold z per window in counter mode (§4.4),
// lossy counting undercounts frequencies by at most ε·N (Manku-Motwani,
// VLDB 2002), KMV distinct estimation has relative error ~1/√k
// (Bar-Yossef et al., RANDOM 2002), a size-k reservoir covers min(1, k/N)
// of the window, and Horvitz–Thompson reweighting under load shedding has
// the classic unbiased variance estimator Σ w(w−1)x² ("A Sampling Algebra
// for Aggregate Estimation", PVLDB 2013, carries exactly these
// variance/CI companions alongside sample-based aggregates).
//
// SamplingOperator::FlushWindow materializes one WindowQualityReport per
// closed window — superaggregate HT estimates with 95% CIs plus one
// EstimatorQuality entry per sampling-package state (via the
// SfunStateDef::quality hook) — and pushes it into a bounded QualityRing,
// overwriting the oldest report. The introspection server's GET /windows
// returns the retained reports as JSON.
//
// Everything here is off the per-tuple hot path: reports are built at
// window boundaries only, and only when the target ring is enabled.
// STREAMOP_NO_STATS compiles report generation out entirely (enabled()
// constant-folds to false).

#ifndef STREAMOP_OBS_QUALITY_H_
#define STREAMOP_OBS_QUALITY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace streamop {
namespace obs {

/// Window-close context handed to SfunStateDef::quality hooks: what the
/// operator knows that the state blob does not.
struct QualityContext {
  uint64_t live_groups = 0;    // live groups of this supergroup at close
  uint64_t window_tuples = 0;  // tuples admitted into the window
};

/// Accuracy of one estimator (a superaggregate or a sampling-package
/// state) at window close. Fields not meaningful for a given kind stay at
/// their defaults; `coverage` uses -1 for "not applicable" so a true 0 is
/// distinguishable.
struct EstimatorQuality {
  const char* kind = "";   // "sum_ht", "count_ht", "kmv", "subset_sum",
                           // "reservoir", "distinct", "lossy_counting"
  std::string display;     // e.g. "sum$(len)" or the sfun state name
  uint32_t supergroup = 0; // index in supergroup creation order

  bool has_estimate = false;
  double estimate = 0.0;   // HT estimate of the window quantity
  double variance = 0.0;   // HT variance estimate (conservative bound for
                           // probabilistic threshold sampling)
  double ci95 = 0.0;       // 95% CI half-width:
                           // 1.96*sqrt(variance) + deterministic_bound
  double deterministic_bound = 0.0;  // counter-mode z / lossy ε·N
  double rel_error = 0.0;  // ~1/sqrt(k) style relative error
  double coverage = -1.0;  // reservoir: min(1, k/N); -1 = n/a
  double threshold_z = 0.0;
  uint64_t samples = 0;    // live sample size backing the estimate
  uint64_t target = 0;     // configured target sample size (0 = none)
};

/// Everything the engine can say about one closed window's sample quality.
struct WindowQualityReport {
  std::string node;        // query-node name ("high0", "query", ...)
  uint64_t seq = 0;        // 0-based window index within the node
  std::string window_id;   // ordered group-by values, comma-joined
  uint64_t tuples_in = 0;
  uint64_t tuples_admitted = 0;
  uint64_t groups_output = 0;
  uint64_t supergroups = 0;  // supergroups live at window close
  bool truncated = false;    // more supergroups than the per-report cap
  double max_weight = 1.0;   // largest HT weight seen in the window
  double shed_p_min = 1.0;   // 1/max_weight: worst admission probability
  std::vector<EstimatorQuality> estimators;
};

/// Bounded overwrite-oldest store of the most recent quality reports,
/// shared by every query of the process (reports carry their node name).
/// Pushes happen once per window flush — a mutex is fine here; nothing on
/// the per-tuple path ever touches this class.
class QualityRing {
 public:
  /// Process-wide default ring (leaked singleton, like TraceRing).
  static QualityRing& Default();

  explicit QualityRing(size_t capacity = 512);

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const {
    return kStatsEnabled && enabled_.load(std::memory_order_relaxed);
  }

  /// Appends a report, dropping the oldest once `capacity` is exceeded.
  void Push(WindowQualityReport&& report);

  /// Copies out the retained reports, oldest first.
  std::vector<WindowQualityReport> Snapshot() const;

  /// {"reports": [...]} — the GET /windows payload.
  std::string ToJson() const;

  /// Total reports ever pushed (>= capacity means overwrites happened).
  uint64_t reports_recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  size_t capacity() const { return capacity_; }
  size_t size() const;

 private:
  const size_t capacity_;
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> recorded_{0};
  mutable std::mutex mu_;
  std::deque<WindowQualityReport> reports_;
};

/// Serializes one report as a JSON object (shared by QualityRing::ToJson
/// and tests that check the schema).
std::string WindowQualityReportToJson(const WindowQualityReport& report);

}  // namespace obs
}  // namespace streamop

#endif  // STREAMOP_OBS_QUALITY_H_
