// Causal window-lifecycle spans: the third observability pillar next to the
// metric registry (counters/gauges/histograms) and the per-window quality
// reports. Where the TraceRing records flat events, the SpanRing stitches
// each window's lifecycle — ring drain → batch select → admission → clean →
// flush → quality report — into a parent/child tree rooted at one "window"
// span per closed window, carrying the batch counts, shed probability and
// Horvitz–Thompson weight context the phases ran under.
//
// Span model:
//  * Every span has a process-unique id (relaxed atomic counter) and a
//    parent id (0 = root). The operator allocates the window span's id when
//    the window opens, so phase spans emitted mid-window can reference
//    their parent before it is emitted; the window span itself is written
//    last, at flush time, covering open → flush.
//  * Batch-level spans ("ring_drain", "batch_select", "admission") attach
//    to the window open when the phase completes; a batch straddling a
//    boundary attributes its phases to the window each phase fed. The
//    drain span is emitted by the runtime, which learns the window span id
//    through the SpanContext it threads through QueryNode::PushBatch →
//    SamplingOperator::ProcessBatch (context propagation, not guesswork).
//  * Window-level spans ("clean", "flush", "quality_report") are children
//    of the window span directly.
//
// Cost discipline matches the TraceRing: disabled, a record site is one
// relaxed bool load; enabled, Emit() claims a slot with one relaxed
// fetch_add and writes fixed-size fields in place — no allocation, oldest
// spans overwritten. Slot fields are individually atomic (relaxed) so a
// concurrent /spans export never races the writer; a snapshot taken
// mid-write may see a torn span (documented, tolerated by the exporters).
// STREAMOP_NO_STATS folds every record site away; the export surface stays
// (serving empty rings), mirroring the HTTP server's contract.

#ifndef STREAMOP_OBS_SPAN_H_
#define STREAMOP_OBS_SPAN_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace streamop {
namespace obs {

/// One completed span. `name` must be a string literal (the ring stores the
/// pointer). A parent_id of 0 marks a root span; window_seq ties the span
/// to a window lifecycle (1-based; 0 = outside any window).
struct SpanRecord {
  const char* name = nullptr;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
  uint64_t window_seq = 0;
  uint64_t ts_ns = 0;
  uint64_t dur_ns = 0;
  uint64_t rows = 0;        // tuples/lanes the span covered
  uint64_t admitted = 0;    // lanes admitted past WHERE (admission spans)
  double shed_p = 1.0;      // upstream Bernoulli admission probability
  double max_weight = 1.0;  // largest HT weight seen in scope
};

/// Per-batch causal context threaded by the runtime through
/// QueryNode::PushBatch into SamplingOperator::ProcessBatch. The runtime
/// fills the upstream fields; the operator reports back the window it fed
/// so the runtime's drain span can parent itself under the window root.
struct SpanContext {
  // Set by the caller (the ring-drain loop).
  double shed_p = 1.0;   // post-tick admission probability of this batch
  uint64_t rows = 0;     // packets popped from the ring for this batch
  // Filled by the sampling operator: the last window this batch touched.
  uint64_t window_span_id = 0;
  uint64_t window_seq = 0;
};

class SpanRing {
 public:
  /// Process-wide default ring, the span analogue of TraceRing::Default().
  static SpanRing& Default();

  explicit SpanRing(size_t capacity = 4096);

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const {
    return kStatsEnabled && enabled_.load(std::memory_order_relaxed);
  }

  /// Allocates a span id without writing anything — used by the operator to
  /// name the window span at open time so children can parent under it.
  uint64_t NextId() {
    if constexpr (kStatsEnabled) {
      return next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
    }
    return 0;
  }

  /// Records a completed span. r.span_id of 0 draws a fresh id; the id
  /// actually used is returned (0 when disabled).
  uint64_t Emit(const SpanRecord& r) {
    if constexpr (kStatsEnabled) {
      if (!enabled()) return 0;
      const uint64_t id = r.span_id != 0 ? r.span_id : NextId();
      Put(r, id);
      return id;
    }
    return 0;
  }

  /// Total spans ever emitted (>= capacity means overwrites happened).
  uint64_t spans_recorded() const {
    return seq_.load(std::memory_order_relaxed);
  }
  size_t capacity() const { return cap_; }

  /// Copies out the retained spans, oldest first by start timestamp.
  std::vector<SpanRecord> Snapshot() const;

  /// Chrome trace format ({"traceEvents": [...]}): complete "X" events with
  /// span/parent/window ids and the shed/weight context in args, timestamps
  /// rebased to the earliest retained span, in microseconds.
  std::string ToChromeTraceJson() const;

  /// Flat JSON span list: {"spans": [...]}.
  std::string ToJson() const;

  /// Spans of one window lifecycle (window_seq == seq), as JSON.
  std::string WindowJson(uint64_t window_seq) const;

 private:
  // Individually-atomic slot fields: writers store relaxed, snapshots load
  // relaxed. A reader overlapping a writer sees a torn span at worst, never
  // a data race.
  struct Slot {
    std::atomic<const char*> name{nullptr};
    std::atomic<uint64_t> span_id{0};
    std::atomic<uint64_t> parent_id{0};
    std::atomic<uint64_t> window_seq{0};
    std::atomic<uint64_t> ts_ns{0};
    std::atomic<uint64_t> dur_ns{0};
    std::atomic<uint64_t> rows{0};
    std::atomic<uint64_t> admitted{0};
    std::atomic<double> shed_p{1.0};
    std::atomic<double> max_weight{1.0};
  };

  void Put(const SpanRecord& r, uint64_t id) {
    const uint64_t s = seq_.fetch_add(1, std::memory_order_relaxed);
    Slot& slot = slots_[s % cap_];
    slot.name.store(r.name, std::memory_order_relaxed);
    slot.span_id.store(id, std::memory_order_relaxed);
    slot.parent_id.store(r.parent_id, std::memory_order_relaxed);
    slot.window_seq.store(r.window_seq, std::memory_order_relaxed);
    slot.ts_ns.store(r.ts_ns, std::memory_order_relaxed);
    slot.dur_ns.store(r.dur_ns, std::memory_order_relaxed);
    slot.rows.store(r.rows, std::memory_order_relaxed);
    slot.admitted.store(r.admitted, std::memory_order_relaxed);
    slot.shed_p.store(r.shed_p, std::memory_order_relaxed);
    slot.max_weight.store(r.max_weight, std::memory_order_relaxed);
  }

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> seq_{0};
  std::atomic<uint64_t> next_id_{0};
  // Slots hold atomics (not movable), so a plain array replaces the
  // vector the TraceRing uses.
  std::unique_ptr<Slot[]> slots_;
  size_t cap_ = 0;
};

}  // namespace obs
}  // namespace streamop

#endif  // STREAMOP_OBS_SPAN_H_
