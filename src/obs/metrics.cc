#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace streamop {
namespace obs {

namespace {

// Escapes `"` and `\` so metric keys like `name{node="low"}` embed safely
// in JSON string position.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 4);
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string FullName(const std::string& name, const std::string& labels) {
  if (labels.empty()) return name;
  return name + "{" + labels + "}";
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

void AppendUInt(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

}  // namespace

uint64_t Histogram::ValueAtQuantile(double q) const {
  const uint64_t total = count();
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  auto target = static_cast<uint64_t>(q * static_cast<double>(total) + 0.5);
  if (target < 1) target = 1;
  if (target > total) target = total;
  uint64_t cum = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    cum += bucket_count(i);
    if (cum >= target) return BucketUpperBound(i);
  }
  return BucketUpperBound(kNumBuckets - 1);
}

MetricRegistry& MetricRegistry::Default() {
  static MetricRegistry* reg = new MetricRegistry();
  return *reg;
}

MetricRegistry::Entry* MetricRegistry::Find(const std::string& name,
                                            const std::string& labels) {
  for (Entry& e : entries_) {
    if (e.name == name && e.labels == labels) return &e;
  }
  return nullptr;
}

Counter* MetricRegistry::GetCounter(const std::string& name,
                                    const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = Find(name, labels)) {
    return e->kind == Kind::kCounter ? e->counter : nullptr;
  }
  counters_.emplace_back();
  Entry e;
  e.name = name;
  e.labels = labels;
  e.kind = Kind::kCounter;
  e.counter = &counters_.back();
  entries_.push_back(e);
  return e.counter;
}

Gauge* MetricRegistry::GetGauge(const std::string& name,
                                const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = Find(name, labels)) {
    return e->kind == Kind::kGauge ? e->gauge : nullptr;
  }
  gauges_.emplace_back();
  Entry e;
  e.name = name;
  e.labels = labels;
  e.kind = Kind::kGauge;
  e.gauge = &gauges_.back();
  entries_.push_back(e);
  return e.gauge;
}

Histogram* MetricRegistry::GetHistogram(const std::string& name,
                                        const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = Find(name, labels)) {
    return e->kind == Kind::kHistogram ? e->histogram : nullptr;
  }
  histograms_.emplace_back();
  Entry e;
  e.name = name;
  e.labels = labels;
  e.kind = Kind::kHistogram;
  e.histogram = &histograms_.back();
  entries_.push_back(e);
  return e.histogram;
}

size_t MetricRegistry::num_metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void MetricRegistry::Visit(
    const std::function<void(const MetricRef&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Entry& e : entries_) {
    fn(MetricRef{e.name, e.labels, e.kind, e.counter, e.gauge, e.histogram});
  }
}

std::string MetricRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n \"counters\": {";
  bool first = true;
  for (const Entry& e : entries_) {
    if (e.kind != Kind::kCounter) continue;
    if (!first) out += ",";
    first = false;
    out += "\n  \"" + JsonEscape(FullName(e.name, e.labels)) + "\": ";
    AppendUInt(&out, e.counter->value());
  }
  out += "\n },\n \"gauges\": {";
  first = true;
  for (const Entry& e : entries_) {
    if (e.kind != Kind::kGauge) continue;
    if (!first) out += ",";
    first = false;
    out += "\n  \"" + JsonEscape(FullName(e.name, e.labels)) + "\": ";
    AppendDouble(&out, e.gauge->value());
  }
  out += "\n },\n \"histograms\": {";
  first = true;
  for (const Entry& e : entries_) {
    if (e.kind != Kind::kHistogram) continue;
    const Histogram& h = *e.histogram;
    if (!first) out += ",";
    first = false;
    out += "\n  \"" + JsonEscape(FullName(e.name, e.labels)) + "\": {";
    out += "\"count\": ";
    AppendUInt(&out, h.count());
    out += ", \"sum\": ";
    AppendUInt(&out, h.sum());
    out += ", \"max\": ";
    AppendUInt(&out, h.max());
    out += ", \"mean\": ";
    AppendDouble(&out, h.mean());
    out += ", \"p50\": ";
    AppendUInt(&out, h.ValueAtQuantile(0.50));
    out += ", \"p90\": ";
    AppendUInt(&out, h.ValueAtQuantile(0.90));
    out += ", \"p99\": ";
    AppendUInt(&out, h.ValueAtQuantile(0.99));
    out += ", \"buckets\": [";
    bool bfirst = true;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      uint64_t c = h.bucket_count(i);
      if (c == 0) continue;  // sparse: only occupied buckets
      if (!bfirst) out += ", ";
      bfirst = false;
      out += "[";
      AppendUInt(&out, Histogram::BucketUpperBound(i));
      out += ", ";
      AppendUInt(&out, c);
      out += "]";
    }
    out += "]}";
  }
  out += "\n }\n}\n";
  return out;
}

std::string MetricRegistry::ToPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Group all samples of a family (same metric name) under one # TYPE
  // line, as the exposition format requires.
  std::vector<std::string> families;
  for (const Entry& e : entries_) {
    if (std::find(families.begin(), families.end(), e.name) ==
        families.end()) {
      families.push_back(e.name);
    }
  }

  std::string out;
  for (const std::string& family : families) {
    const char* type = nullptr;
    bool histogram_family = false;
    for (const Entry& e : entries_) {
      if (e.name != family) continue;
      if (type == nullptr) {
        type = e.kind == Kind::kCounter
                   ? "counter"
                   : e.kind == Kind::kGauge ? "gauge" : "histogram";
        histogram_family = e.kind == Kind::kHistogram;
        out += "# TYPE " + family + " " + type + "\n";
      }
      const std::string label_block =
          e.labels.empty() ? "" : "{" + e.labels + "}";
      switch (e.kind) {
        case Kind::kCounter:
          out += family + label_block + " ";
          AppendUInt(&out, e.counter->value());
          out += "\n";
          break;
        case Kind::kGauge:
          out += family + label_block + " ";
          AppendDouble(&out, e.gauge->value());
          out += "\n";
          break;
        case Kind::kHistogram: {
          const Histogram& h = *e.histogram;
          const std::string sep = e.labels.empty() ? "" : ",";
          uint64_t cum = 0;
          for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
            uint64_t c = h.bucket_count(i);
            if (c == 0) continue;  // cumulative counts stay correct
            cum += c;
            out += family + "_bucket{" + e.labels + sep + "le=\"";
            AppendUInt(&out, Histogram::BucketUpperBound(i));
            out += "\"} ";
            AppendUInt(&out, cum);
            out += "\n";
          }
          out += family + "_bucket{" + e.labels + sep + "le=\"+Inf\"} ";
          AppendUInt(&out, h.count());
          out += "\n";
          out += family + "_sum" + label_block + " ";
          AppendUInt(&out, h.sum());
          out += "\n";
          out += family + "_count" + label_block + " ";
          AppendUInt(&out, h.count());
          out += "\n";
          break;
        }
      }
    }
    if (!histogram_family) continue;
    // Pre-computed quantiles as companion gauge families (family_p50 /
    // family_p90 / family_p99): Prometheus cannot derive accurate
    // percentiles from log-linear buckets server-side, and the JSON export
    // already carries these (keep the two exports in parity).
    static constexpr struct {
      const char* suffix;
      double q;
    } kQuantiles[] = {{"_p50", 0.50}, {"_p90", 0.90}, {"_p99", 0.99}};
    for (const auto& quant : kQuantiles) {
      out += "# TYPE " + family + quant.suffix + " gauge\n";
      for (const Entry& e : entries_) {
        if (e.name != family || e.kind != Kind::kHistogram) continue;
        const std::string label_block =
            e.labels.empty() ? "" : "{" + e.labels + "}";
        out += family + quant.suffix + label_block + " ";
        AppendUInt(&out, e.histogram->ValueAtQuantile(quant.q));
        out += "\n";
      }
    }
  }
  return out;
}

RingBufferMetrics RingBufferMetrics::Create(MetricRegistry& reg,
                                            const std::string& labels) {
  RingBufferMetrics m;
  m.pushes = reg.GetCounter("streamop_ring_pushes_total", labels);
  m.push_failures = reg.GetCounter("streamop_ring_push_failures_total", labels);
  m.pops = reg.GetCounter("streamop_ring_pops_total", labels);
  m.occupancy_hwm = reg.GetGauge("streamop_ring_occupancy_hwm", labels);
  return m;
}

NodeMetrics NodeMetrics::Create(MetricRegistry& reg,
                                const std::string& node_name) {
  const std::string labels = "node=\"" + node_name + "\"";
  NodeMetrics m;
  m.tuples_in = reg.GetCounter("streamop_node_tuples_in_total", labels);
  m.tuples_out = reg.GetCounter("streamop_node_tuples_out_total", labels);
  m.cpu_ns = reg.GetCounter("streamop_node_cpu_ns_total", labels);
  m.batches = reg.GetCounter("streamop_node_batches_total", labels);
  m.batch_latency_ns =
      reg.GetHistogram("streamop_node_batch_latency_ns", labels);
  m.batch_fill = reg.GetHistogram("streamop_batch_fill", labels);
  return m;
}

OperatorMetrics OperatorMetrics::Create(MetricRegistry& reg,
                                        const std::string& node_name) {
  const std::string labels = "node=\"" + node_name + "\"";
  OperatorMetrics m;
  m.tuples = reg.GetCounter("streamop_operator_tuples_total", labels);
  m.admitted = reg.GetCounter("streamop_operator_admitted_total", labels);
  m.groups_created =
      reg.GetCounter("streamop_operator_groups_created_total", labels);
  m.groups_removed =
      reg.GetCounter("streamop_operator_groups_removed_total", labels);
  m.cleaning_phases =
      reg.GetCounter("streamop_operator_cleaning_phases_total", labels);
  m.windows = reg.GetCounter("streamop_operator_windows_total", labels);
  m.rows_out = reg.GetCounter("streamop_operator_rows_out_total", labels);
  m.superagg_updates =
      reg.GetCounter("streamop_operator_superagg_updates_total", labels);
  m.sfun_calls = reg.GetCounter("streamop_operator_sfun_calls_total", labels);
  m.late_tuples =
      reg.GetCounter("streamop_operator_late_tuples_total", labels);
  m.admission_ns =
      reg.GetHistogram("streamop_operator_admission_ns", labels);
  m.cleaning_ns = reg.GetHistogram("streamop_operator_cleaning_ns", labels);
  m.flush_ns = reg.GetHistogram("streamop_operator_flush_ns", labels);
  m.group_table_load_factor =
      reg.GetGauge("streamop_operator_group_table_load_factor", labels);
  m.peak_groups = reg.GetGauge("streamop_operator_peak_groups", labels);
  m.quality_sum_ci95 = reg.GetGauge("streamop_quality_sum_ci95", labels);
  m.quality_threshold_z =
      reg.GetGauge("streamop_quality_threshold_z", labels);
  m.quality_freq_error_bound =
      reg.GetGauge("streamop_quality_freq_error_bound", labels);
  m.quality_distinct_rel_error =
      reg.GetGauge("streamop_quality_distinct_rel_error", labels);
  m.quality_coverage = reg.GetGauge("streamop_quality_coverage", labels);
  m.quality_shed_p_min = reg.GetGauge("streamop_quality_shed_p_min", labels);
  return m;
}

SourceMetrics SourceMetrics::Create(MetricRegistry& reg,
                                    const std::string& source_name) {
  const std::string labels = "source=\"" + source_name + "\"";
  SourceMetrics m;
  m.tuples = reg.GetCounter("streamop_source_tuples_total", labels);
  return m;
}

IngestSourceMetrics IngestSourceMetrics::Create(
    MetricRegistry& reg, const std::string& source_name) {
  const std::string labels = "source=\"" + source_name + "\"";
  IngestSourceMetrics m;
  m.frames = reg.GetCounter("streamop_ingest_frames_total", labels);
  m.records = reg.GetCounter("streamop_ingest_records_total", labels);
  m.malformed_frames =
      reg.GetCounter("streamop_ingest_malformed_frames_total", labels);
  m.reconnects = reg.GetCounter("streamop_ingest_reconnects_total", labels);
  m.gaps = reg.GetCounter("streamop_ingest_seq_gaps_total", labels);
  m.gap_records = reg.GetCounter("streamop_ingest_gap_records_total", labels);
  m.duplicates =
      reg.GetCounter("streamop_ingest_duplicate_records_total", labels);
  m.heartbeats = reg.GetCounter("streamop_ingest_heartbeats_total", labels);
  m.durable_offset = reg.GetGauge("streamop_ingest_durable_offset", labels);
  m.resume_offset = reg.GetGauge("streamop_ingest_resume_offset", labels);
  m.offset_lag = reg.GetGauge("streamop_ingest_offset_lag", labels);
  return m;
}

}  // namespace obs
}  // namespace streamop
