#include "core/sampling_operator.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/hash.h"
#include "expr/evaluator.h"

namespace streamop {

SamplingOperator::SamplingOperator(
    std::shared_ptr<const SamplingQueryPlan> plan)
    : plan_(std::move(plan)) {
  scratch_gk_.Reserve(plan_->group_by_exprs.size());
  scratch_sk_.Reserve(plan_->supergroup_slots.size());
  scratch_superagg_finals_.reserve(plan_->superaggs.size());
  scratch_agg_finals_.reserve(plan_->aggregates.size());
}

SamplingOperator::~SamplingOperator() {
  DestroySupergroupStates(new_supergroups_);
  DestroySupergroupStates(old_supergroups_);
}

void SamplingOperator::DestroySupergroupStates(SupergroupTable& table) {
  for (auto& [key, sg] : table) {
    for (size_t i = 0; i < sg.states.size(); ++i) {
      const SfunStateDef* def = plan_->sfun_states[i];
      if (def->destroy != nullptr && sg.states[i] != nullptr) {
        def->destroy(sg.states[i]);
      }
    }
    sg.states.clear();
    sg.blobs.clear();
  }
  table.clear();
}

SamplingOperator::SupergroupEntry& SamplingOperator::GetOrCreateSupergroup(
    const GroupKey& sk) {
  auto it = new_supergroups_.find(sk);
  if (it != new_supergroups_.end()) return it->second;

  SupergroupEntry entry;
  // Locate the equivalent supergroup of the previous window, if any, so
  // that SFUN states can carry over (dynamic subset-sum threshold).
  const SupergroupEntry* old_entry = nullptr;
  auto old_it = old_supergroups_.find(sk);
  if (old_it != old_supergroups_.end()) old_entry = &old_it->second;

  const size_t n_states = plan_->sfun_states.size();
  entry.blobs.reserve(n_states);
  entry.states.reserve(n_states);
  uint64_t sg_seed =
      HashCombine(plan_->seed, Mix64(++supergroup_seq_) ^ sk.Hash());
  for (size_t i = 0; i < n_states; ++i) {
    const SfunStateDef* def = plan_->sfun_states[i];
    size_t words =
        (def->size + sizeof(std::max_align_t) - 1) / sizeof(std::max_align_t);
    entry.blobs.push_back(std::make_unique<std::max_align_t[]>(words));
    void* mem = entry.blobs.back().get();
    const void* old_state =
        old_entry != nullptr ? old_entry->states[i] : nullptr;
    def->init(mem, old_state, HashCombine(sg_seed, i));
    entry.states.push_back(mem);
  }
  entry.superaggs.reserve(plan_->superaggs.size());
  for (const SuperAggSpec& spec : plan_->superaggs) {
    entry.superaggs.emplace_back(&spec);
  }
  supergroup_order_.push_back(sk);
  auto [ins_it, inserted] = new_supergroups_.emplace(sk, std::move(entry));
  (void)inserted;
  return ins_it->second;
}

void SamplingOperator::SuperAggFinalsInto(const SupergroupEntry& sg,
                                          std::vector<Value>* out) const {
  out->clear();
  out->reserve(sg.superaggs.size());
  for (const SuperAggState& s : sg.superaggs) out->push_back(s.Final());
}

void SamplingOperator::AggFinalsInto(const GroupEntry& g,
                                     std::vector<Value>* out) const {
  out->clear();
  out->reserve(g.aggs.size());
  for (const AggregateAccumulator& a : g.aggs) out->push_back(a.Final());
}

Status SamplingOperator::Process(const Tuple& input, double weight) {
  // Observability: one plain increment per tuple; the admission-path timer
  // and the batched flush of pending counts into the registry's atomics
  // both ride the same 1-in-256 tick, so the steady state pays no clock
  // reads and no atomic RMWs (§7 of DESIGN.md). All of this folds away
  // under STREAMOP_NO_STATS.
  const bool obs_on = metrics_.enabled();
  uint64_t admit_t0 = 0;
  bool time_this_tuple = false;
  if (obs_on) {
    ++pending_tuples_;
    time_this_tuple = ((++admission_sample_tick_ & 0xFFu) == 0);
    if (time_this_tuple) {
      admit_t0 = obs::NowNanos();
      FlushPendingMetrics();
    }
  }

  // 1. Compute every group-by variable into the scratch key. The key's
  // hash folds in incrementally, and its vector capacity is reused, so the
  // steady-state path performs no allocation here.
  scratch_gk_.Clear();
  {
    EvalContext gb_ctx;
    gb_ctx.input = &input;
    for (const ExprPtr& e : plan_->group_by_exprs) {
      STREAMOP_ASSIGN_OR_RETURN(Value v, Evaluate(*e, gb_ctx));
      scratch_gk_.Append(std::move(v));
    }
  }
  // 2. Window placement: lexicographic three-way compare of the ordered
  // group-by variables against the current window id. Greater → window
  // boundary (advance). Smaller → a *late* tuple: its window already closed
  // and was emitted, so instead of corrupting the boundary sequence by
  // reopening it, the tuple is clamped into the current window (ordered
  // slots overwritten with the current window's values) and counted in the
  // late_tuples metric. Equal → same window.
  bool boundary = !window_open_;
  bool late = false;
  if (window_open_) {
    const std::vector<Value>& gbv = scratch_gk_.values();
    size_t oi = 0;
    for (size_t i = 0; i < gbv.size(); ++i) {
      if (!plan_->group_by_ordered[i]) continue;
      if (oi >= current_window_id_.size()) {
        boundary = true;
        break;
      }
      if (ValueLess(current_window_id_[oi], gbv[i])) {
        boundary = true;
        break;
      }
      if (ValueLess(gbv[i], current_window_id_[oi])) {
        late = true;
        break;
      }
      ++oi;
    }
  }
  if (late) {
    // Rare path: rebuild the scratch key with the ordered slots clamped to
    // the current window. The clamped-values vector reuses capacity, but
    // Value copies may allocate — acceptable off the steady-state path.
    scratch_clamped_.assign(scratch_gk_.values().begin(),
                            scratch_gk_.values().end());
    size_t oi = 0;
    for (size_t i = 0; i < scratch_clamped_.size(); ++i) {
      if (!plan_->group_by_ordered[i]) continue;
      scratch_clamped_[i] = current_window_id_[oi];
      ++oi;
    }
    scratch_gk_.Clear();
    for (Value& v : scratch_clamped_) scratch_gk_.Append(std::move(v));
    ++live_stats_.late_tuples;
    ++late_tuples_total_;
    if (obs_on && metrics_.late_tuples != nullptr) {
      metrics_.late_tuples->Add();  // rare: direct atomic is fine
    }
  }
  const std::vector<Value>& gb_values = scratch_gk_.values();
  if (boundary) {
    if (window_open_) {
      STREAMOP_RETURN_NOT_OK(FlushWindow());
    }
    window_open_ = true;
    current_window_id_.clear();
    for (size_t i = 0; i < gb_values.size(); ++i) {
      if (plan_->group_by_ordered[i]) current_window_id_.push_back(gb_values[i]);
    }
    live_stats_ = WindowStats{};
    live_stats_.window_id = current_window_id_;
    live_max_weight_ = 1.0;
  }
  ++live_stats_.tuples_in;
  if constexpr (obs::kStatsEnabled) {
    if (weight > live_max_weight_) live_max_weight_ = weight;
  }

  // 3. Supergroup lookup / creation (with previous-window state hand-off).
  scratch_sk_.Clear();
  for (int slot : plan_->supergroup_slots) {
    scratch_sk_.Append(gb_values[static_cast<size_t>(slot)]);
  }
  SupergroupEntry& sg = GetOrCreateSupergroup(scratch_sk_);

  // 4. WHERE: the sampling admission predicate.
  SuperAggFinalsInto(sg, &scratch_superagg_finals_);
  {
    EvalContext ctx;
    ctx.input = &input;
    ctx.group_key = &scratch_gk_;
    ctx.superaggs = &scratch_superagg_finals_;
    ctx.sfun_states = sg.states.data();
    ctx.num_sfun_states = sg.states.size();
    ctx.sfun_calls = &pending_sfun_calls_;
    STREAMOP_ASSIGN_OR_RETURN(bool admitted,
                              EvaluatePredicate(plan_->where.get(), ctx));
    if (!admitted) {
      if (time_this_tuple) {
        metrics_.admission_ns->Record(obs::NowNanos() - admit_t0);
      }
      return Status::OK();
    }
  }
  ++live_stats_.tuples_admitted;
  if (obs_on) ++pending_admitted_;

  // 5. Tuple-level superaggregate updates (sum$/count$/first$).
  uint64_t superagg_updates = 0;
  for (size_t i = 0; i < plan_->superaggs.size(); ++i) {
    const SuperAggSpec& spec = plan_->superaggs[i];
    if (spec.kind == SuperAggKind::kSum || spec.kind == SuperAggKind::kCount ||
        spec.kind == SuperAggKind::kFirst) {
      Value v = Value::Null();
      if (spec.arg != nullptr) {
        EvalContext ctx;
        ctx.input = &input;
        ctx.group_key = &scratch_gk_;
        ctx.sfun_states = sg.states.data();
        ctx.num_sfun_states = sg.states.size();
        ctx.sfun_calls = &pending_sfun_calls_;
        STREAMOP_ASSIGN_OR_RETURN(v, Evaluate(*spec.arg, ctx));
      }
      sg.superaggs[i].OnTuple(v, weight);
      ++superagg_updates;
    }
  }
  if (obs_on) pending_superagg_updates_ += superagg_updates;

  // 6. Group lookup / creation + aggregate update. The lookup probes with
  // the scratch key (cached hash); a persistent copy is made only when the
  // group is new.
  auto git = groups_.find(scratch_gk_);
  if (git == groups_.end()) {
    GroupEntry entry;
    entry.aggs.reserve(plan_->aggregates.size());
    for (const AggregateSpec& spec : plan_->aggregates) {
      entry.aggs.emplace_back(spec.kind, spec.param);
    }
    git = groups_.emplace(scratch_gk_, std::move(entry)).first;
    for (SuperAggState& s : sg.superaggs) s.OnGroupCreated(scratch_gk_);
    supergroup_groups_[scratch_sk_].push_back(scratch_gk_);
    ++live_stats_.groups_created;
    if (groups_.size() > live_stats_.peak_groups) {
      live_stats_.peak_groups = groups_.size();
    }
    if (obs_on) {
      metrics_.groups_created->Add();
      metrics_.peak_groups->SetMax(static_cast<double>(groups_.size()));
    }
  }
  {
    EvalContext ctx;
    ctx.input = &input;
    ctx.group_key = &scratch_gk_;
    ctx.sfun_states = sg.states.data();
    ctx.num_sfun_states = sg.states.size();
    ctx.sfun_calls = &pending_sfun_calls_;
    for (size_t i = 0; i < plan_->aggregates.size(); ++i) {
      const AggregateSpec& spec = plan_->aggregates[i];
      if (spec.star || spec.arg == nullptr) {
        git->second.aggs[i].Update(Value::Null(), weight);
      } else {
        STREAMOP_ASSIGN_OR_RETURN(Value v, Evaluate(*spec.arg, ctx));
        git->second.aggs[i].Update(v, weight);
      }
    }
  }

  if (time_this_tuple) {
    metrics_.admission_ns->Record(obs::NowNanos() - admit_t0);
  }

  // 7. CLEANING WHEN: the cleaning trigger, evaluated against the
  // supergroup state and fresh superaggregates (scratch buffer reused).
  if (plan_->cleaning_when != nullptr) {
    SuperAggFinalsInto(sg, &scratch_superagg_finals_);
    EvalContext ctx;
    ctx.input = &input;
    ctx.group_key = &scratch_gk_;
    ctx.superaggs = &scratch_superagg_finals_;
    ctx.sfun_states = sg.states.data();
    ctx.num_sfun_states = sg.states.size();
    ctx.sfun_calls = &pending_sfun_calls_;
    STREAMOP_ASSIGN_OR_RETURN(bool trigger,
                              EvaluatePredicate(plan_->cleaning_when.get(), ctx));
    if (trigger) {
      ++live_stats_.cleaning_phases;
      // Cleaning phases are rare (a handful per window), so each one is
      // timed fully and traced.
      const bool tracing = trace_ring_->enabled();
      const uint64_t t0 = (obs_on || tracing) ? obs::NowNanos() : 0;
      STREAMOP_RETURN_NOT_OK(RunCleaningPhase(scratch_sk_, sg));
      if (obs_on || tracing) {
        const uint64_t dur = obs::NowNanos() - t0;
        if (obs_on) {
          metrics_.cleaning_phases->Add();
          metrics_.cleaning_ns->Record(dur);
        }
        if (tracing) trace_ring_->Record("cleaning_phase", t0, dur);
      }
    }
  }
  return Status::OK();
}

void SamplingOperator::RemoveGroup(const GroupKey& gk, SupergroupEntry& sg) {
  auto git = groups_.find(gk);
  if (git == groups_.end()) return;
  for (size_t i = 0; i < sg.superaggs.size(); ++i) {
    const SuperAggSpec& spec = plan_->superaggs[i];
    Value shadow = Value::Null();
    if (spec.shadow_agg_slot >= 0 &&
        static_cast<size_t>(spec.shadow_agg_slot) < git->second.aggs.size()) {
      shadow = git->second.aggs[static_cast<size_t>(spec.shadow_agg_slot)]
                   .Final();
    }
    sg.superaggs[i].OnGroupRemoved(gk, shadow);
  }
  groups_.erase(git);
  ++live_stats_.groups_removed;
  if (metrics_.enabled()) metrics_.groups_removed->Add();
}

Status SamplingOperator::RunCleaningPhase(const GroupKey& sk,
                                          SupergroupEntry& sg) {
  auto mit = supergroup_groups_.find(sk);
  if (mit == supergroup_groups_.end()) return Status::OK();

  // Superaggregates are materialized once at the start of the pass; the
  // CLEANING BY predicate sees a consistent snapshot while removals update
  // the live superaggregate state underneath.
  std::vector<Value> sa_finals;
  SuperAggFinalsInto(sg, &sa_finals);

  std::vector<GroupKey> survivors;
  survivors.reserve(mit->second.size());
  for (const GroupKey& gk : mit->second) {
    auto git = groups_.find(gk);
    if (git == groups_.end()) continue;  // already removed
    AggFinalsInto(git->second, &scratch_agg_finals_);
    EvalContext ctx;
    ctx.group_key = &gk;
    ctx.aggregates = &scratch_agg_finals_;
    ctx.superaggs = &sa_finals;
    ctx.sfun_states = sg.states.data();
    ctx.num_sfun_states = sg.states.size();
    ctx.sfun_calls = &pending_sfun_calls_;
    STREAMOP_ASSIGN_OR_RETURN(bool keep,
                              EvaluatePredicate(plan_->cleaning_by.get(), ctx));
    if (keep) {
      survivors.push_back(gk);
    } else {
      // RemoveGroup touches only the group table, so `git`/`mit` staying
      // borrowed across it is safe even with backward-shift deletion.
      RemoveGroup(gk, sg);
    }
  }
  mit->second = std::move(survivors);
  return Status::OK();
}

void SamplingOperator::FlushPendingMetrics() {
  if (!metrics_.enabled()) return;
  if (pending_tuples_ > 0) {
    metrics_.tuples->Add(pending_tuples_);
    pending_tuples_ = 0;
  }
  if (pending_admitted_ > 0) {
    metrics_.admitted->Add(pending_admitted_);
    pending_admitted_ = 0;
  }
  if (pending_superagg_updates_ > 0) {
    metrics_.superagg_updates->Add(pending_superagg_updates_);
    pending_superagg_updates_ = 0;
  }
  if (pending_sfun_calls_ > 0) {
    metrics_.sfun_calls->Add(pending_sfun_calls_);
    pending_sfun_calls_ = 0;
  }
}

Status SamplingOperator::FlushWindow() {
  // Window flushes are per-window, not per-tuple: time every one and trace
  // it as a complete event. Pending per-tuple counts are drained first so
  // the registry is exact at every window boundary.
  FlushPendingMetrics();
  const bool obs_on = metrics_.enabled();
  const bool tracing = trace_ring_->enabled();
  const uint64_t flush_t0 = (obs_on || tracing) ? obs::NowNanos() : 0;
  if (obs_on && groups_.capacity() > 0) {
    // Load factor of the group table as the window closes, before HAVING
    // prunes groups and the table swap clears it.
    metrics_.group_table_load_factor->Set(
        static_cast<double>(groups_.size()) /
        static_cast<double>(groups_.capacity()));
  }

  // Signal end-of-window to every SFUN state that cares. Walked in
  // supergroup creation order (not table order) for deterministic output.
  for (const GroupKey& sk : supergroup_order_) {
    auto sgit = new_supergroups_.find(sk);
    if (sgit == new_supergroups_.end()) continue;
    SupergroupEntry& sg = sgit->second;
    for (size_t i = 0; i < sg.states.size(); ++i) {
      const SfunStateDef* def = plan_->sfun_states[i];
      if (def->window_final != nullptr) def->window_final(sg.states[i]);
    }
  }

  // HAVING + SELECT per group, walking supergroup membership lists so the
  // SFUN states see their own groups in a contiguous pass (the final
  // cleaning of subset-sum / reservoir depends on this). Supergroups are
  // visited in creation order and groups in membership (creation) order, so
  // emitted rows are insertion-ordered — independent of table layout.
  for (const GroupKey& sk : supergroup_order_) {
    auto mit = supergroup_groups_.find(sk);
    if (mit == supergroup_groups_.end()) continue;
    auto sgit = new_supergroups_.find(sk);
    if (sgit == new_supergroups_.end()) continue;
    SupergroupEntry& sg = sgit->second;
    std::vector<Value> sa_finals;
    SuperAggFinalsInto(sg, &sa_finals);

    for (const GroupKey& gk : mit->second) {
      auto git = groups_.find(gk);
      if (git == groups_.end()) continue;
      AggFinalsInto(git->second, &scratch_agg_finals_);
      EvalContext ctx;
      ctx.group_key = &gk;
      ctx.aggregates = &scratch_agg_finals_;
      ctx.superaggs = &sa_finals;
      ctx.sfun_states = sg.states.data();
      ctx.num_sfun_states = sg.states.size();
      ctx.sfun_calls = &pending_sfun_calls_;

      STREAMOP_ASSIGN_OR_RETURN(bool sampled,
                                EvaluatePredicate(plan_->having.get(), ctx));
      if (!sampled) {
        RemoveGroup(gk, sg);
        continue;
      }
      // Emit the output row.
      std::vector<Value> row;
      row.reserve(plan_->select_exprs.size());
      for (const ExprPtr& e : plan_->select_exprs) {
        STREAMOP_ASSIGN_OR_RETURN(Value v, Evaluate(*e, ctx));
        row.push_back(std::move(v));
      }
      output_.emplace_back(std::move(row));
      ++live_stats_.groups_output;
      ++live_stats_.tuples_output;
    }
  }

  window_stats_.push_back(live_stats_);

  if (obs_on) {
    metrics_.windows->Add();
    metrics_.rows_out->Add(live_stats_.tuples_output);
  }

  // Quality report for the window just closed: must run before the table
  // swap below while the supergroup states and membership are still live.
  if constexpr (obs::kStatsEnabled) {
    if (quality_ring_ != nullptr && quality_ring_->enabled()) {
      RecordWindowQuality();
    }
  }

  // Table swap per §6.4: clear the group and membership tables, drop the
  // old supergroup table, move new -> old. clear() keeps each table's slot
  // array, and the fresh supergroup table is pre-sized from this window's
  // population, so the next window's burst does not rehash.
  const uint64_t expected_groups = window_stats_.back().peak_groups;
  const size_t expected_supergroups = new_supergroups_.size();
  groups_.clear();
  supergroup_groups_.clear();
  supergroup_order_.clear();
  DestroySupergroupStates(old_supergroups_);
  old_supergroups_ = std::move(new_supergroups_);
  new_supergroups_.clear();
  groups_.reserve(static_cast<size_t>(expected_groups));
  supergroup_groups_.reserve(expected_supergroups);
  new_supergroups_.reserve(expected_supergroups);

  if (obs_on || tracing) {
    const uint64_t dur = obs::NowNanos() - flush_t0;
    if (obs_on) metrics_.flush_ns->Record(dur);
    if (tracing) trace_ring_->Record("window_flush", flush_t0, dur);
  }
  return Status::OK();
}

void SamplingOperator::RecordWindowQuality() {
  // Reports cover at most this many supergroups; beyond it the report is
  // flagged truncated. High-cardinality supergroup queries (per-flow
  // sampling) would otherwise make every report megabytes.
  constexpr size_t kMaxSupergroupsPerReport = 16;

  const WindowStats& ws = window_stats_.back();
  obs::WindowQualityReport rep;
  rep.node = quality_node_;
  rep.seq = quality_seq_++;
  for (size_t i = 0; i < ws.window_id.size(); ++i) {
    if (i > 0) rep.window_id += ",";
    rep.window_id += ws.window_id[i].ToString();
  }
  rep.tuples_in = ws.tuples_in;
  rep.tuples_admitted = ws.tuples_admitted;
  rep.groups_output = ws.groups_output;
  rep.max_weight = live_max_weight_;
  rep.shed_p_min = live_max_weight_ > 1.0 ? 1.0 / live_max_weight_ : 1.0;

  uint32_t sg_index = 0;
  for (const GroupKey& sk : supergroup_order_) {
    auto sgit = new_supergroups_.find(sk);
    if (sgit == new_supergroups_.end()) continue;
    ++rep.supergroups;
    if (sg_index >= kMaxSupergroupsPerReport) {
      rep.truncated = true;
      ++sg_index;
      continue;
    }
    SupergroupEntry& sg = sgit->second;

    obs::QualityContext qctx;
    qctx.window_tuples = ws.tuples_admitted;
    // Live groups of this supergroup: membership lists keep removed keys,
    // so filter against the group table. Window-boundary work only.
    auto mit = supergroup_groups_.find(sk);
    if (mit != supergroup_groups_.end()) {
      for (const GroupKey& gk : mit->second) {
        if (groups_.find(gk) != groups_.end()) ++qctx.live_groups;
      }
    }

    // Sampling-package states first: the subset-sum threshold doubles as
    // the deterministic error bound of this supergroup's sum$ below.
    double det_bound = 0.0;
    for (size_t i = 0; i < sg.states.size(); ++i) {
      const SfunStateDef* def = plan_->sfun_states[i];
      if (def->quality == nullptr) continue;
      obs::EstimatorQuality q;
      if (!def->quality(sg.states[i], qctx, &q)) continue;
      q.supergroup = sg_index;
      if (std::strcmp(q.kind, "subset_sum") == 0) {
        det_bound = std::max(det_bound, q.deterministic_bound);
      }
      rep.estimators.push_back(std::move(q));
    }

    // Superaggregates: HT estimate + variance for sum$/count$ (widened by
    // the supergroup's counter-mode threshold bound, if any), KMV sample
    // size for kth_smallest$/kth_largest$.
    for (size_t i = 0; i < sg.superaggs.size(); ++i) {
      const SuperAggState& st = sg.superaggs[i];
      const SuperAggSpec& spec = plan_->superaggs[i];
      obs::EstimatorQuality q;
      q.supergroup = sg_index;
      q.display = spec.display;
      switch (spec.kind) {
        case SuperAggKind::kSum:
        case SuperAggKind::kCount:
          q.kind = spec.kind == SuperAggKind::kSum ? "sum_ht" : "count_ht";
          q.has_estimate = true;
          q.estimate = st.Final().AsDouble();
          q.variance = st.ht_variance();
          q.deterministic_bound = det_bound;
          q.ci95 = 1.96 * std::sqrt(q.variance) + det_bound;
          break;
        case SuperAggKind::kKthSmallest:
        case SuperAggKind::kKthLargest:
          q.kind = "kmv";
          q.samples = st.tracked_values();
          q.target = spec.k;
          q.rel_error =
              spec.k > 0 ? 1.0 / std::sqrt(static_cast<double>(spec.k)) : 0.0;
          break;
        default:
          continue;  // count_distinct$ / first$ report via the SFUN hooks
      }
      rep.estimators.push_back(std::move(q));
    }
    ++sg_index;
  }

  // Latest-window gauges for /metrics scrapes: worst case across the
  // report's supergroups (the full per-supergroup detail stays in the
  // ring).
  if (metrics_.enabled() && metrics_.quality_sum_ci95 != nullptr) {
    double sum_ci = 0.0, z = 0.0, freq = 0.0, distinct_rel = 0.0;
    double coverage = -1.0;
    for (const obs::EstimatorQuality& q : rep.estimators) {
      if (std::strcmp(q.kind, "sum_ht") == 0 ||
          std::strcmp(q.kind, "count_ht") == 0) {
        sum_ci = std::max(sum_ci, q.ci95);
      } else if (std::strcmp(q.kind, "subset_sum") == 0) {
        z = std::max(z, q.threshold_z);
      } else if (std::strcmp(q.kind, "lossy_counting") == 0) {
        freq = std::max(freq, q.deterministic_bound);
      } else if (std::strcmp(q.kind, "distinct") == 0 ||
                 std::strcmp(q.kind, "kmv") == 0) {
        distinct_rel = std::max(distinct_rel, q.rel_error);
      } else if (std::strcmp(q.kind, "reservoir") == 0 && q.coverage >= 0.0) {
        coverage = coverage < 0.0 ? q.coverage : std::min(coverage, q.coverage);
      }
    }
    metrics_.quality_sum_ci95->Set(sum_ci);
    metrics_.quality_threshold_z->Set(z);
    metrics_.quality_freq_error_bound->Set(freq);
    metrics_.quality_distinct_rel_error->Set(distinct_rel);
    if (coverage >= 0.0) metrics_.quality_coverage->Set(coverage);
    metrics_.quality_shed_p_min->Set(rep.shed_p_min);
  }

  quality_ring_->Push(std::move(rep));
}

Status SamplingOperator::FinishStream() {
  if (!window_open_) return Status::OK();
  window_open_ = false;
  return FlushWindow();
}

std::vector<Tuple> SamplingOperator::DrainOutput() {
  std::vector<Tuple> out = std::move(output_);
  output_.clear();
  return out;
}

Result<std::vector<Tuple>> RunToCompletion(SamplingOperator& op,
                                           StreamSource& source) {
  Tuple t;
  while (source.Next(&t)) {
    STREAMOP_RETURN_NOT_OK(op.Process(t));
  }
  STREAMOP_RETURN_NOT_OK(op.FinishStream());
  return op.DrainOutput();
}

}  // namespace streamop
