#include "core/sampling_operator.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/hash.h"
#include "expr/evaluator.h"

namespace streamop {

SamplingOperator::SamplingOperator(
    std::shared_ptr<const SamplingQueryPlan> plan)
    : plan_(std::move(plan)) {
  scratch_gk_.Reserve(plan_->group_by_exprs.size());
  scratch_sk_.Reserve(plan_->supergroup_slots.size());
  scratch_superagg_finals_.reserve(plan_->superaggs.size());
  scratch_agg_finals_.reserve(plan_->aggregates.size());
  CompilePrograms();
}

void SamplingOperator::CompilePrograms() {
  const size_t ngb = plan_->group_by_exprs.size();
  bool ok = true;

  // Group-by variables: must all compile AND be batchable (they read only
  // the input tuple, so a compiled program always is; an uncompilable one
  // disables the whole columnar path — every later stage needs key columns).
  gb_progs_.reserve(ngb);
  for (const ExprPtr& e : plan_->group_by_exprs) {
    gb_progs_.push_back(ExprProgram::TryCompile(e.get()));
    if (!gb_progs_.back().has_value() || !gb_progs_.back()->batchable()) {
      ok = false;
    }
  }
  for (size_t i = 0; i < plan_->group_by_ordered.size(); ++i) {
    if (plan_->group_by_ordered[i]) ordered_gb_slots_.push_back(i);
  }

  // WHERE / CLEANING WHEN: a compiled program suffices — sfun- or
  // superagg-reading predicates (ssample admission) run in compiled row
  // mode on each lane rather than column-at-a-time.
  if (plan_->where != nullptr) {
    where_prog_ = ExprProgram::TryCompile(plan_->where.get());
    if (!where_prog_.has_value()) ok = false;
  }
  if (plan_->cleaning_when != nullptr) {
    cleaning_when_prog_ = ExprProgram::TryCompile(plan_->cleaning_when.get());
    if (!cleaning_when_prog_.has_value()) ok = false;
  }

  agg_arg_progs_.reserve(plan_->aggregates.size());
  for (const AggregateSpec& spec : plan_->aggregates) {
    agg_arg_progs_.push_back(spec.star || spec.arg == nullptr
                                 ? std::nullopt
                                 : ExprProgram::TryCompile(spec.arg.get()));
    if (!spec.star && spec.arg != nullptr && !agg_arg_progs_.back()) ok = false;
  }
  superagg_arg_progs_.reserve(plan_->superaggs.size());
  for (const SuperAggSpec& spec : plan_->superaggs) {
    superagg_arg_progs_.push_back(
        spec.arg == nullptr ? std::nullopt
                            : ExprProgram::TryCompile(spec.arg.get()));
    const bool tuple_level = spec.kind == SuperAggKind::kSum ||
                             spec.kind == SuperAggKind::kCount ||
                             spec.kind == SuperAggKind::kFirst;
    if (tuple_level && spec.arg != nullptr && !superagg_arg_progs_.back()) {
      ok = false;
    }
  }
  batched_ok_ = ok;

  // Identity programs (a bare column reference, the common case for keys
  // like srcIP and arguments like len) need no evaluation at all: their
  // result column IS the batch's input column, so ProcessBatch aliases it.
  gb_identity_.assign(ngb, -1);
  for (size_t j = 0; j < ngb; ++j) {
    if (gb_progs_[j].has_value()) {
      gb_identity_[j] = gb_progs_[j]->identity_input_slot();
    }
  }
  agg_arg_identity_.assign(plan_->aggregates.size(), -1);
  for (size_t a = 0; a < agg_arg_progs_.size(); ++a) {
    if (agg_arg_progs_[a].has_value()) {
      agg_arg_identity_[a] = agg_arg_progs_[a]->identity_input_slot();
    }
  }
  superagg_arg_identity_.assign(plan_->superaggs.size(), -1);
  for (size_t s = 0; s < superagg_arg_progs_.size(); ++s) {
    if (superagg_arg_progs_[s].has_value()) {
      superagg_arg_identity_[s] =
          superagg_arg_progs_[s]->identity_input_slot();
    }
  }
  for (size_t s = 0; s < plan_->superaggs.size(); ++s) {
    const SuperAggKind kind = plan_->superaggs[s].kind;
    if (kind == SuperAggKind::kSum || kind == SuperAggKind::kCount ||
        kind == SuperAggKind::kFirst) {
      tuple_level_superaggs_.push_back(s);
    }
  }

  key_cols_.resize(ngb);
  key_col_ptrs_.resize(ngb);
  for (size_t j = 0; j < ngb; ++j) key_col_ptrs_[j] = &key_cols_[j];
  agg_arg_cols_.resize(plan_->aggregates.size());
  agg_arg_ptrs_.assign(plan_->aggregates.size(), nullptr);
  agg_arg_col_ok_.assign(plan_->aggregates.size(), 0);
  superagg_arg_cols_.resize(plan_->superaggs.size());
  superagg_arg_ptrs_.assign(plan_->superaggs.size(), nullptr);
  superagg_arg_col_ok_.assign(plan_->superaggs.size(), 0);
  row_stack_.resize(ExprProgram::kMaxRowStack);
}

SamplingOperator::~SamplingOperator() {
  DestroySupergroupStates(new_supergroups_);
  DestroySupergroupStates(old_supergroups_);
}

void SamplingOperator::DestroySupergroupStates(SupergroupTable& table) {
  for (auto& [key, sg] : table) {
    for (size_t i = 0; i < sg.states.size(); ++i) {
      const SfunStateDef* def = plan_->sfun_states[i];
      if (def->destroy != nullptr && sg.states[i] != nullptr) {
        def->destroy(sg.states[i]);
      }
    }
    sg.states.clear();
    sg.blobs.clear();
  }
  table.clear();
}

SamplingOperator::SupergroupEntry& SamplingOperator::GetOrCreateSupergroup(
    const GroupKey& sk) {
  auto it = new_supergroups_.find(sk);
  if (it != new_supergroups_.end()) return it->second;

  SupergroupEntry entry;
  // Locate the equivalent supergroup of the previous window, if any, so
  // that SFUN states can carry over (dynamic subset-sum threshold).
  const SupergroupEntry* old_entry = nullptr;
  auto old_it = old_supergroups_.find(sk);
  if (old_it != old_supergroups_.end()) old_entry = &old_it->second;

  const size_t n_states = plan_->sfun_states.size();
  entry.blobs.reserve(n_states);
  entry.states.reserve(n_states);
  uint64_t sg_seed =
      HashCombine(plan_->seed, Mix64(++supergroup_seq_) ^ sk.Hash());
  for (size_t i = 0; i < n_states; ++i) {
    const SfunStateDef* def = plan_->sfun_states[i];
    size_t words =
        (def->size + sizeof(std::max_align_t) - 1) / sizeof(std::max_align_t);
    entry.blobs.push_back(std::make_unique<std::max_align_t[]>(words));
    void* mem = entry.blobs.back().get();
    const void* old_state =
        old_entry != nullptr ? old_entry->states[i] : nullptr;
    def->init(mem, old_state, HashCombine(sg_seed, i));
    entry.states.push_back(mem);
  }
  entry.superaggs.reserve(plan_->superaggs.size());
  for (const SuperAggSpec& spec : plan_->superaggs) {
    entry.superaggs.emplace_back(&spec);
  }
  supergroup_order_.push_back(sk);
  auto [ins_it, inserted] = new_supergroups_.emplace(sk, std::move(entry));
  (void)inserted;
  return ins_it->second;
}

void SamplingOperator::SuperAggFinalsInto(const SupergroupEntry& sg,
                                          std::vector<Value>* out) const {
  out->clear();
  out->reserve(sg.superaggs.size());
  for (const SuperAggState& s : sg.superaggs) out->push_back(s.Final());
}

void SamplingOperator::AggFinalsInto(const GroupEntry& g,
                                     std::vector<Value>* out) const {
  out->clear();
  out->reserve(g.aggs.size());
  for (const AggregateAccumulator& a : g.aggs) out->push_back(a.Final());
}

Status SamplingOperator::Process(const Tuple& input, double weight) {
  // Post-restore replay: the first recovery_skip_remaining_ tuples of the
  // re-fed stream were fully processed before the snapshot was taken, so
  // they are discarded positionally — no metrics, no window bookkeeping.
  if (recovery_skip_remaining_ > 0) {
    --recovery_skip_remaining_;
    return Status::OK();
  }
  // Observability: one plain increment per tuple; the admission-path timer
  // and the batched flush of pending counts into the registry's atomics
  // both ride the same 1-in-256 tick, so the steady state pays no clock
  // reads and no atomic RMWs (§7 of DESIGN.md). All of this folds away
  // under STREAMOP_NO_STATS.
  const bool obs_on = metrics_.enabled();
  uint64_t admit_t0 = 0;
  bool time_this_tuple = false;
  if (obs_on) {
    ++pending_tuples_;
    time_this_tuple = ((++admission_sample_tick_ & 0xFFu) == 0);
    if (time_this_tuple) {
      admit_t0 = obs::NowNanos();
      FlushPendingMetrics();
    }
  }

  // 1. Compute every group-by variable into the scratch key. The key's
  // hash folds in incrementally, and its vector capacity is reused, so the
  // steady-state path performs no allocation here.
  scratch_gk_.Clear();
  {
    EvalContext gb_ctx;
    gb_ctx.input = &input;
    for (const ExprPtr& e : plan_->group_by_exprs) {
      STREAMOP_ASSIGN_OR_RETURN(Value v, Evaluate(*e, gb_ctx));
      scratch_gk_.Append(std::move(v));
    }
  }
  // 2. Window placement: lexicographic three-way compare of the ordered
  // group-by variables against the current window id. Greater → window
  // boundary (advance). Smaller → a *late* tuple: its window already closed
  // and was emitted, so instead of corrupting the boundary sequence by
  // reopening it, the tuple is clamped into the current window (ordered
  // slots overwritten with the current window's values) and counted in the
  // late_tuples metric. Equal → same window.
  bool boundary = !window_open_;
  bool late = false;
  if (window_open_) {
    const std::vector<Value>& gbv = scratch_gk_.values();
    size_t oi = 0;
    for (size_t i = 0; i < gbv.size(); ++i) {
      if (!plan_->group_by_ordered[i]) continue;
      if (oi >= current_window_id_.size()) {
        boundary = true;
        break;
      }
      if (ValueLess(current_window_id_[oi], gbv[i])) {
        boundary = true;
        break;
      }
      if (ValueLess(gbv[i], current_window_id_[oi])) {
        late = true;
        break;
      }
      ++oi;
    }
  }
  if (late) {
    // Rare path: rebuild the scratch key with the ordered slots clamped to
    // the current window. The clamped-values vector reuses capacity, but
    // Value copies may allocate — acceptable off the steady-state path.
    scratch_clamped_.assign(scratch_gk_.values().begin(),
                            scratch_gk_.values().end());
    size_t oi = 0;
    for (size_t i = 0; i < scratch_clamped_.size(); ++i) {
      if (!plan_->group_by_ordered[i]) continue;
      scratch_clamped_[i] = current_window_id_[oi];
      ++oi;
    }
    scratch_gk_.Clear();
    for (Value& v : scratch_clamped_) scratch_gk_.Append(std::move(v));
    ++live_stats_.late_tuples;
    ++late_tuples_total_;
    if (obs_on && metrics_.late_tuples != nullptr) {
      metrics_.late_tuples->Add();  // rare: direct atomic is fine
    }
    if constexpr (obs::kStatsEnabled) {
      // Exemplar: which tuple was late, not just how many were. Dims carry
      // the first raw group-key values (srcIP/destIP-style context).
      if (exemplars_->enabled()) {
        obs::Exemplar ex;
        ex.ts_ns = obs::NowNanos();
        ex.value = weight;
        ex.weight = weight;
        ex.window_seq = window_seq_;
        const std::vector<Value>& kv = scratch_gk_.values();
        for (size_t i = 0; i < kv.size() && ex.ndims < ex.dims.size(); ++i) {
          ex.dims[ex.ndims++] = kv[i].AsUInt();
        }
        exemplars_->Offer(obs::ExemplarStore::kLateTuple, ex);
      }
    }
  }
  const std::vector<Value>& gb_values = scratch_gk_.values();
  if (boundary) {
    const bool flushed = window_open_;
    if (window_open_) {
      STREAMOP_RETURN_NOT_OK(FlushWindow());
    }
    window_open_ = true;
    current_window_id_.clear();
    for (size_t i = 0; i < gb_values.size(); ++i) {
      if (plan_->group_by_ordered[i]) current_window_id_.push_back(gb_values[i]);
    }
    live_stats_ = WindowStats{};
    live_stats_.window_id = current_window_id_;
    live_max_weight_ = 1.0;
    OpenWindowSpan();
    // Checkpoint hook at the between-windows point: the flushed window's
    // stats are in window_stats_, the next window is open with zero tuples
    // counted, so a snapshot here resumes exactly at this boundary tuple.
    if (flushed && window_flush_hook_) window_flush_hook_(windows_flushed_);
  }
  ++live_stats_.tuples_in;
  if constexpr (obs::kStatsEnabled) {
    if (weight > live_max_weight_) live_max_weight_ = weight;
  }

  // 3. Supergroup lookup / creation (with previous-window state hand-off).
  scratch_sk_.Clear();
  for (int slot : plan_->supergroup_slots) {
    scratch_sk_.Append(gb_values[static_cast<size_t>(slot)]);
  }
  SupergroupEntry& sg = GetOrCreateSupergroup(scratch_sk_);

  // 4. WHERE: the sampling admission predicate.
  SuperAggFinalsInto(sg, &scratch_superagg_finals_);
  {
    EvalContext ctx;
    ctx.input = &input;
    ctx.group_key = &scratch_gk_;
    ctx.superaggs = &scratch_superagg_finals_;
    ctx.sfun_states = sg.states.data();
    ctx.num_sfun_states = sg.states.size();
    ctx.sfun_calls = &pending_sfun_calls_;
    STREAMOP_ASSIGN_OR_RETURN(bool admitted,
                              EvaluatePredicate(plan_->where.get(), ctx));
    if (!admitted) {
      if (time_this_tuple) {
        metrics_.admission_ns->Record(obs::NowNanos() - admit_t0);
      }
      return Status::OK();
    }
  }
  ++live_stats_.tuples_admitted;
  if (obs_on) ++pending_admitted_;

  // 5. Tuple-level superaggregate updates (sum$/count$/first$).
  uint64_t superagg_updates = 0;
  for (size_t i = 0; i < plan_->superaggs.size(); ++i) {
    const SuperAggSpec& spec = plan_->superaggs[i];
    if (spec.kind == SuperAggKind::kSum || spec.kind == SuperAggKind::kCount ||
        spec.kind == SuperAggKind::kFirst) {
      Value v = Value::Null();
      if (spec.arg != nullptr) {
        EvalContext ctx;
        ctx.input = &input;
        ctx.group_key = &scratch_gk_;
        ctx.sfun_states = sg.states.data();
        ctx.num_sfun_states = sg.states.size();
        ctx.sfun_calls = &pending_sfun_calls_;
        STREAMOP_ASSIGN_OR_RETURN(v, Evaluate(*spec.arg, ctx));
      }
      sg.superaggs[i].OnTuple(v, weight);
      ++superagg_updates;
    }
  }
  if (obs_on) pending_superagg_updates_ += superagg_updates;

  // 6. Group lookup / creation + aggregate update. The lookup probes with
  // the scratch key (cached hash); a persistent copy is made only when the
  // group is new.
  auto git = groups_.find(scratch_gk_);
  if (git == groups_.end()) {
    GroupEntry entry;
    entry.aggs.reserve(plan_->aggregates.size());
    for (const AggregateSpec& spec : plan_->aggregates) {
      entry.aggs.emplace_back(spec.kind, spec.param);
    }
    git = groups_.emplace(scratch_gk_, std::move(entry)).first;
    for (SuperAggState& s : sg.superaggs) s.OnGroupCreated(scratch_gk_);
    supergroup_groups_[scratch_sk_].push_back(scratch_gk_);
    ++live_stats_.groups_created;
    if (groups_.size() > live_stats_.peak_groups) {
      live_stats_.peak_groups = groups_.size();
    }
    if (obs_on) {
      metrics_.groups_created->Add();
      metrics_.peak_groups->SetMax(static_cast<double>(groups_.size()));
    }
  }
  {
    EvalContext ctx;
    ctx.input = &input;
    ctx.group_key = &scratch_gk_;
    ctx.sfun_states = sg.states.data();
    ctx.num_sfun_states = sg.states.size();
    ctx.sfun_calls = &pending_sfun_calls_;
    for (size_t i = 0; i < plan_->aggregates.size(); ++i) {
      const AggregateSpec& spec = plan_->aggregates[i];
      if (spec.star || spec.arg == nullptr) {
        git->second.aggs[i].Update(Value::Null(), weight);
      } else {
        STREAMOP_ASSIGN_OR_RETURN(Value v, Evaluate(*spec.arg, ctx));
        git->second.aggs[i].Update(v, weight);
      }
    }
  }

  if (time_this_tuple) {
    const uint64_t lat = obs::NowNanos() - admit_t0;
    metrics_.admission_ns->Record(lat);
    if constexpr (obs::kStatsEnabled) {
      // The sampled tuple doubles as the latency-band exemplar: same
      // 1-in-256 cadence, so exemplars add no clock reads of their own.
      if (exemplars_->enabled()) {
        obs::Exemplar ex;
        ex.ts_ns = admit_t0;
        ex.weight = weight;
        ex.window_seq = window_seq_;
        exemplars_->OfferLatency(lat, ex);
      }
    }
  }

  // 7. CLEANING WHEN: the cleaning trigger, evaluated against the
  // supergroup state and fresh superaggregates (scratch buffer reused).
  if (plan_->cleaning_when != nullptr) {
    SuperAggFinalsInto(sg, &scratch_superagg_finals_);
    EvalContext ctx;
    ctx.input = &input;
    ctx.group_key = &scratch_gk_;
    ctx.superaggs = &scratch_superagg_finals_;
    ctx.sfun_states = sg.states.data();
    ctx.num_sfun_states = sg.states.size();
    ctx.sfun_calls = &pending_sfun_calls_;
    STREAMOP_ASSIGN_OR_RETURN(bool trigger,
                              EvaluatePredicate(plan_->cleaning_when.get(), ctx));
    if (trigger) {
      ++live_stats_.cleaning_phases;
      // Cleaning phases are rare (a handful per window), so each one is
      // timed fully, traced, and emitted as a child span of the window.
      const bool tracing = trace_ring_->enabled();
      const bool span_on = span_ring_->enabled();
      const bool prof_on = profiler_->phase_accounting_enabled();
      const uint64_t t0 = (obs_on || tracing || span_on) ? obs::NowNanos() : 0;
      const uint64_t c0 = prof_on ? obs::CycleNow() : 0;
      STREAMOP_RETURN_NOT_OK(RunCleaningPhase(scratch_sk_, sg));
      if (prof_on) {
        profiler_->AddPhaseCycles(obs::Profiler::kClean, obs::CycleNow() - c0);
      }
      if (obs_on || tracing || span_on) {
        const uint64_t dur = obs::NowNanos() - t0;
        if (obs_on) {
          metrics_.cleaning_phases->Add();
          metrics_.cleaning_ns->Record(dur);
        }
        if (tracing) trace_ring_->Record("cleaning_phase", t0, dur);
        if (span_on) {
          obs::SpanRecord sr;
          sr.name = "clean";
          sr.parent_id = window_span_id_;
          sr.window_seq = window_seq_;
          sr.ts_ns = t0;
          sr.dur_ns = dur;
          sr.max_weight = live_max_weight_;
          span_ring_->Emit(sr);
        }
      }
    }
  }
  return Status::OK();
}

Status SamplingOperator::ProcessBatchFallback(const TupleBatch& batch,
                                              size_t first_lane,
                                              double weight) {
  const size_t n = batch.num_rows();
  const uint8_t* sel = batch.selection();
  for (size_t i = first_lane; i < n; ++i) {
    if (!sel[i]) continue;
    batch.MaterializeRow(i, &batch_row_);
    STREAMOP_RETURN_NOT_OK(Process(batch_row_, weight));
  }
  return Status::OK();
}

void SamplingOperator::OpenWindowSpan() {
  if constexpr (obs::kStatsEnabled) {
    ++window_seq_;
    if (span_ring_->enabled()) {
      // Reserve the root span's id now so every phase span of this window
      // can name its parent; the root is written at flush, covering
      // open -> flush.
      window_span_id_ = span_ring_->NextId();
      window_open_ts_ns_ = obs::NowNanos();
    } else {
      window_span_id_ = 0;
      window_open_ts_ns_ = 0;
    }
  }
}

Status SamplingOperator::ProcessBatch(const TupleBatch& batch, double weight,
                                      obs::SpanContext* span_ctx) {
  const Status st = ProcessBatchInner(batch, weight, span_ctx);
  if constexpr (obs::kStatsEnabled) {
    // Causal back-report: whatever path the batch took (columnar, fallback,
    // error), tell the caller which window lifecycle it last fed so the
    // runtime's drain span can parent under the window root.
    if (span_ctx != nullptr) {
      span_ctx->window_span_id = window_span_id_;
      span_ctx->window_seq = window_seq_;
    }
  }
  return st;
}

Status SamplingOperator::ProcessBatchInner(const TupleBatch& batch,
                                           double weight,
                                           obs::SpanContext* span_ctx) {
  const size_t n = batch.num_rows();
  if (n == 0) return Status::OK();
  if (!batched_ok_) return ProcessBatchFallback(batch, 0, weight);
  // Post-restore replay: hand the batch to the per-lane fallback, whose
  // Process() calls discard tuples until the skip drains; the lanes after
  // it resume through the tuple-equivalent path.
  if (recovery_skip_remaining_ > 0) {
    return ProcessBatchFallback(batch, 0, weight);
  }

  // Span/profiler context for this batch. The shed probability comes from
  // the caller's SpanContext when threaded (the runtime knows the post-tick
  // admission probability); a bare weighted call reconstructs it as 1/w.
  const bool span_on = span_ring_->enabled();
  const bool prof_on = profiler_->phase_accounting_enabled();
  const double batch_shed_p =
      span_ctx != nullptr ? span_ctx->shed_p
                          : (weight > 1.0 ? 1.0 / weight : 1.0);
  const uint64_t sel_t0 = span_on ? obs::NowNanos() : 0;
  const uint64_t sel_c0 = prof_on ? obs::CycleNow() : 0;

  // ---- Columnar precompute (side-effect-free) -------------------------
  // Everything here is a pure function of the batch, so any evaluation
  // error can abandon the columns and replay the whole batch tuple-at-a-
  // time: Process() then reproduces the exact per-tuple error position
  // (and silently succeeds when the error was an artifact of evaluating a
  // lane the per-tuple path never would have — e.g. an aggregate argument
  // on a lane its WHERE rejects).
  batch_scratch_.Reset();
  const size_t ngb = plan_->group_by_exprs.size();
  ExprProgram::BatchContext bctx;
  bctx.batch = &batch;  // mask defaults to the batch's selection vector
  for (size_t j = 0; j < ngb; ++j) {
    const int id_slot = gb_identity_[j];
    if (id_slot >= 0 && static_cast<size_t>(id_slot) < batch.num_cols()) {
      // Identity: the key column IS the input column — alias, zero copies.
      key_col_ptrs_[j] = &batch.col(static_cast<size_t>(id_slot));
      continue;
    }
    key_col_ptrs_[j] = &key_cols_[j];
    if (!gb_progs_[j]->EvalBatch(bctx, &batch_scratch_, &key_cols_[j]).ok()) {
      return ProcessBatchFallback(batch, 0, weight);
    }
  }
  bctx.key_cols = key_col_ptrs_.data();
  bctx.num_key_cols = ngb;

  // Per-lane key hashes, replicated column-wise: a fold of RawValueHash
  // over the key columns starting from GroupKey::kSeed is bit-equal to the
  // hash of the GroupKey Process() would have built, so table probes below
  // need no materialized key.
  lane_gk_hash_.assign(n, GroupKey::kSeed);
  for (size_t j = 0; j < ngb; ++j) {
    const VecCol& c = *key_col_ptrs_[j];
    for (size_t i = 0; i < n; ++i) {
      lane_gk_hash_[i] = HashCombine(lane_gk_hash_[i],
                                     RawValueHash(c.type[i], c.raw[i]));
    }
  }
  const size_t nsk = plan_->supergroup_slots.size();
  if (nsk > 0) {
    lane_sk_hash_.assign(n, GroupKey::kSeed);
    for (size_t j = 0; j < nsk; ++j) {
      const VecCol& c =
          *key_col_ptrs_[static_cast<size_t>(plan_->supergroup_slots[j])];
      for (size_t i = 0; i < n; ++i) {
        lane_sk_hash_[i] = HashCombine(lane_sk_hash_[i],
                                       RawValueHash(c.type[i], c.raw[i]));
      }
    }
  }

  // WHERE column: only for predicates with no per-supergroup inputs
  // (ssample admission reads SFUN state and must run lane-by-lane below).
  bool where_col_ok = false;
  if (plan_->where != nullptr && where_prog_->batchable()) {
    if (!where_prog_->EvalBatch(bctx, &batch_scratch_, &where_col_).ok()) {
      return ProcessBatchFallback(batch, 0, weight);
    }
    where_col_ok = true;
  }

  // Aggregate / tuple-level superaggregate argument columns, masked down
  // to admitted lanes when the WHERE column is available — both for work
  // and because the per-tuple path never evaluates arguments of rejected
  // tuples (a division by zero there must not abort the batch).
  const uint8_t* sel = batch.selection();
  if (where_col_ok) {
    admit_mask_.resize(n);
    for (size_t i = 0; i < n; ++i) {
      admit_mask_[i] = sel[i] != 0 &&
                       RawValueAsBool(where_col_.type[i], where_col_.raw[i]);
    }
    bctx.mask = admit_mask_.data();
  }
  for (size_t a = 0; a < plan_->aggregates.size(); ++a) {
    agg_arg_col_ok_[a] = 0;
    const int id_slot = agg_arg_identity_[a];
    if (id_slot >= 0 && static_cast<size_t>(id_slot) < batch.num_cols()) {
      agg_arg_ptrs_[a] = &batch.col(static_cast<size_t>(id_slot));
      agg_arg_col_ok_[a] = 1;
      continue;
    }
    const auto& prog = agg_arg_progs_[a];
    if (prog.has_value() && prog->batchable()) {
      if (!prog->EvalBatch(bctx, &batch_scratch_, &agg_arg_cols_[a]).ok()) {
        return ProcessBatchFallback(batch, 0, weight);
      }
      agg_arg_ptrs_[a] = &agg_arg_cols_[a];
      agg_arg_col_ok_[a] = 1;
    }
  }
  for (size_t s = 0; s < plan_->superaggs.size(); ++s) {
    superagg_arg_col_ok_[s] = 0;
    const int id_slot = superagg_arg_identity_[s];
    if (id_slot >= 0 && static_cast<size_t>(id_slot) < batch.num_cols()) {
      superagg_arg_ptrs_[s] = &batch.col(static_cast<size_t>(id_slot));
      superagg_arg_col_ok_[s] = 1;
      continue;
    }
    const auto& prog = superagg_arg_progs_[s];
    if (prog.has_value() && prog->batchable()) {
      if (!prog->EvalBatch(bctx, &batch_scratch_, &superagg_arg_cols_[s])
               .ok()) {
        return ProcessBatchFallback(batch, 0, weight);
      }
      superagg_arg_ptrs_[s] = &superagg_arg_cols_[s];
      superagg_arg_col_ok_[s] = 1;
    }
  }

  // Precompute done: close the batch-select phase (the span is emitted at
  // batch end once the window it fed is known).
  const uint64_t sel_dur = span_on ? obs::NowNanos() - sel_t0 : 0;
  if (prof_on) {
    profiler_->AddPhaseCycles(obs::Profiler::kBatchSelect,
                              obs::CycleNow() - sel_c0);
  }

  // ---- Per-lane loop, mirroring Process() steps 2-7 -------------------
  // Observability is batched: one clock read pair and one pending-counter
  // flush per batch instead of per tuple (lanes that detour through
  // Process() — late tuples, fallbacks — count themselves).
  const bool obs_on = metrics_.enabled();
  const uint64_t batch_t0 = obs_on ? obs::NowNanos() : 0;
  const uint64_t adm_t0 = span_on ? (obs_on ? batch_t0 : obs::NowNanos()) : 0;
  const uint64_t adm_c0 = prof_on ? obs::CycleNow() : 0;
  uint64_t clean_cycles = 0;  // nested cleaning, subtracted from admission
  uint64_t inline_lanes = 0;

  // Consecutive lanes overwhelmingly share a supergroup; cache the last
  // lane's resolution and revalidate with a bitwise column compare (a
  // conservative check: a miss only costs the table probe).
  SupergroupEntry* cached_sg = nullptr;
  uint64_t cached_hash = 0;
  size_t cached_lane = 0;
  // Superaggregate finals currently sitting in scratch_superagg_finals_
  // belong to this supergroup; reset to null whenever any superagg state
  // may have changed (OnTuple, group create/remove, cleaning, detours).
  const SupergroupEntry* finals_sg = nullptr;
  // Lane already placed inside current_window_id_: later lanes revalidate
  // with a bitwise compare of the ordered key columns instead of
  // materializing Values (conservative — a mismatch runs full placement).
  ptrdiff_t win_lane = -1;

  // One row context for every compiled row-mode evaluation below; only the
  // lane, the supergroup's SFUN states, and the finals pointer vary.
  ExprProgram::RowContext rc;
  rc.batch = &batch;
  rc.key_cols = key_col_ptrs_.data();
  rc.num_key_cols = ngb;
  rc.sfun_calls = &pending_sfun_calls_;
  rc.scratch_stack = row_stack_.data();

  // Probe-ahead distance for group-table prefetching: far enough that the
  // slot line arrives before the probe, close enough to stay cached.
  constexpr size_t kProbeAhead = 8;

  // Per-batch admission/update tallies, folded into the pending metric
  // counters once at the end — no per-lane instrumented branches.
  uint64_t batch_admitted = 0;
  uint64_t batch_superagg_updates = 0;

  for (size_t i = 0; i < n; ++i) {
    if (!sel[i]) continue;
    if (i + kProbeAhead < n) {
      groups_.prefetch_hashed(lane_gk_hash_[i + kProbeAhead]);
    }

    // Window placement (Process step 2) straight off the key columns.
    bool boundary = !window_open_;
    bool late = false;
    bool placed = false;
    if (window_open_ && win_lane >= 0) {
      placed = true;
      const size_t wl = static_cast<size_t>(win_lane);
      for (size_t slot : ordered_gb_slots_) {
        const VecCol& c = *key_col_ptrs_[slot];
        if (c.type[wl] != c.type[i] || c.raw[wl] != c.raw[i]) {
          placed = false;
          break;
        }
      }
    }
    if (window_open_ && !placed) {
      size_t oi = 0;
      for (size_t slot : ordered_gb_slots_) {
        if (oi >= current_window_id_.size()) {
          boundary = true;
          break;
        }
        const VecCol& c = *key_col_ptrs_[slot];
        Value lv = MaterializeRawValue(c.type[i], c.raw[i]);
        if (ValueLess(current_window_id_[oi], lv)) {
          boundary = true;
          break;
        }
        if (ValueLess(lv, current_window_id_[oi])) {
          late = true;
          break;
        }
        ++oi;
      }
      if (!boundary && !late) win_lane = static_cast<ptrdiff_t>(i);
    }
    if (late) {
      // Rare path: clamping rebuilds the key, so hand the whole lane to
      // Process() (which also does its own accounting).
      batch.MaterializeRow(i, &batch_row_);
      STREAMOP_RETURN_NOT_OK(Process(batch_row_, weight));
      cached_sg = nullptr;  // Process may have created supergroups
      finals_sg = nullptr;  // ... and advanced superaggregates
      continue;
    }
    if (boundary) {
      const bool flushed = window_open_;
      if (window_open_) {
        STREAMOP_RETURN_NOT_OK(FlushWindow());
      }
      cached_sg = nullptr;
      finals_sg = nullptr;
      window_open_ = true;
      current_window_id_.clear();
      for (size_t slot : ordered_gb_slots_) {
        const VecCol& c = *key_col_ptrs_[slot];
        current_window_id_.push_back(MaterializeRawValue(c.type[i], c.raw[i]));
      }
      win_lane = static_cast<ptrdiff_t>(i);
      live_stats_ = WindowStats{};
      live_stats_.window_id = current_window_id_;
      live_max_weight_ = 1.0;
      OpenWindowSpan();
      // Same between-windows checkpoint point as the tuple path.
      if (flushed && window_flush_hook_) window_flush_hook_(windows_flushed_);
    }
    ++inline_lanes;
    ++live_stats_.tuples_in;
    if constexpr (obs::kStatsEnabled) {
      if (weight > live_max_weight_) live_max_weight_ = weight;
    }

    // Supergroup lookup / creation (step 3): last-lane cache, then a
    // hash-first probe against the lane columns, materializing a key only
    // on creation.
    const uint64_t skh = nsk > 0 ? lane_sk_hash_[i] : GroupKey::kSeed;
    SupergroupEntry* sg = cached_sg;
    bool cache_hit = cached_sg != nullptr && cached_hash == skh;
    if (cache_hit) {
      for (size_t j = 0; j < nsk; ++j) {
        const VecCol& c =
            *key_col_ptrs_[static_cast<size_t>(plan_->supergroup_slots[j])];
        if (c.type[cached_lane] != c.type[i] ||
            c.raw[cached_lane] != c.raw[i]) {
          cache_hit = false;
          break;
        }
      }
    }
    if (!cache_hit) {
      auto sit = new_supergroups_.find_hashed(skh, [&](const GroupKey& k) {
        for (size_t j = 0; j < nsk; ++j) {
          const VecCol& c =
              *key_col_ptrs_[static_cast<size_t>(plan_->supergroup_slots[j])];
          if (!RawValueEquals(k.at(j), c.type[i], c.raw[i])) return false;
        }
        return true;
      });
      if (sit != new_supergroups_.end()) {
        sg = &sit->second;
      } else {
        scratch_sk_.Clear();
        for (size_t j = 0; j < nsk; ++j) {
          const VecCol& c =
              *key_col_ptrs_[static_cast<size_t>(plan_->supergroup_slots[j])];
          scratch_sk_.Append(MaterializeRawValue(c.type[i], c.raw[i]));
        }
        sg = &GetOrCreateSupergroup(scratch_sk_);
        finals_sg = nullptr;  // insertion may rehash and move entries
      }
      cached_sg = sg;
      cached_hash = skh;
      cached_lane = i;
    }
    rc.row = i;
    rc.sfun_states = sg->states.data();
    rc.num_sfun_states = sg->states.size();

    // WHERE (step 4): precomputed column, else compiled row mode with the
    // supergroup's SFUN states (and superaggregate finals only if the
    // predicate actually reads them — ssample admission does not).
    if (plan_->where != nullptr) {
      bool admitted;
      if (where_col_ok) {
        admitted = admit_mask_[i] != 0;
      } else {
        if (where_prog_->reads_superagg()) {
          if (finals_sg != sg) {
            SuperAggFinalsInto(*sg, &scratch_superagg_finals_);
            finals_sg = sg;
          }
          rc.superaggs = &scratch_superagg_finals_;
        } else {
          rc.superaggs = nullptr;
        }
        STREAMOP_ASSIGN_OR_RETURN(Value wv, where_prog_->EvalRow(rc));
        admitted = wv.AsBool();
      }
      if (!admitted) continue;
    }
    ++live_stats_.tuples_admitted;
    ++batch_admitted;

    // Tuple-level superaggregate updates (step 5).
    if (!tuple_level_superaggs_.empty()) {
      for (size_t s : tuple_level_superaggs_) {
        const SuperAggSpec& spec = plan_->superaggs[s];
        Value v = Value::Null();
        if (spec.arg != nullptr) {
          if (superagg_arg_col_ok_[s]) {
            const VecCol& c = *superagg_arg_ptrs_[s];
            v = MaterializeRawValue(c.type[i], c.raw[i]);
          } else {
            rc.superaggs = nullptr;
            STREAMOP_ASSIGN_OR_RETURN(v, superagg_arg_progs_[s]->EvalRow(rc));
          }
        }
        sg->superaggs[s].OnTuple(v, weight);
        ++batch_superagg_updates;
      }
      finals_sg = nullptr;
    }

    // Group lookup / creation + aggregate update (step 6): the probe runs
    // on the lane hash and column compare; a GroupKey is materialized only
    // when the group is new.
    auto git = groups_.find_hashed(lane_gk_hash_[i], [&](const GroupKey& k) {
      for (size_t j = 0; j < ngb; ++j) {
        const VecCol& c = *key_col_ptrs_[j];
        if (!RawValueEquals(k.at(j), c.type[i], c.raw[i])) {
          return false;
        }
      }
      return true;
    });
    if (git == groups_.end()) {
      scratch_gk_.Clear();
      for (size_t j = 0; j < ngb; ++j) {
        const VecCol& c = *key_col_ptrs_[j];
        scratch_gk_.Append(MaterializeRawValue(c.type[i], c.raw[i]));
      }
      scratch_sk_.Clear();
      for (int slot : plan_->supergroup_slots) {
        scratch_sk_.Append(scratch_gk_.at(static_cast<size_t>(slot)));
      }
      GroupEntry entry;
      entry.aggs.reserve(plan_->aggregates.size());
      for (const AggregateSpec& spec : plan_->aggregates) {
        entry.aggs.emplace_back(spec.kind, spec.param);
      }
      git = groups_.emplace(scratch_gk_, std::move(entry)).first;
      for (SuperAggState& s : sg->superaggs) s.OnGroupCreated(scratch_gk_);
      finals_sg = nullptr;  // OnGroupCreated advances group-level superaggs
      supergroup_groups_[scratch_sk_].push_back(scratch_gk_);
      ++live_stats_.groups_created;
      if (groups_.size() > live_stats_.peak_groups) {
        live_stats_.peak_groups = groups_.size();
      }
      if (obs_on) {
        metrics_.groups_created->Add();
        metrics_.peak_groups->SetMax(static_cast<double>(groups_.size()));
      }
    }
    for (size_t a = 0; a < plan_->aggregates.size(); ++a) {
      const AggregateSpec& spec = plan_->aggregates[a];
      if (spec.star || spec.arg == nullptr) {
        git->second.aggs[a].Update(Value::Null(), weight);
      } else if (agg_arg_col_ok_[a]) {
        const VecCol& c = *agg_arg_ptrs_[a];
        git->second.aggs[a].Update(MaterializeRawValue(c.type[i], c.raw[i]),
                                   weight);
      } else {
        rc.superaggs = nullptr;
        STREAMOP_ASSIGN_OR_RETURN(Value v, agg_arg_progs_[a]->EvalRow(rc));
        git->second.aggs[a].Update(v, weight);
      }
    }

    // CLEANING WHEN (step 7), compiled row mode. Finals are recomputed only
    // when this supergroup's superaggregates may have moved since the last
    // time they were materialized (usually once per batch, not per lane).
    if (plan_->cleaning_when != nullptr) {
      if (cleaning_when_prog_->reads_superagg()) {
        if (finals_sg != sg) {
          SuperAggFinalsInto(*sg, &scratch_superagg_finals_);
          finals_sg = sg;
        }
        rc.superaggs = &scratch_superagg_finals_;
      } else {
        rc.superaggs = nullptr;
      }
      STREAMOP_ASSIGN_OR_RETURN(Value cv, cleaning_when_prog_->EvalRow(rc));
      if (cv.AsBool()) {
        ++live_stats_.cleaning_phases;
        const bool tracing = trace_ring_->enabled();
        const uint64_t t0 =
            (obs_on || tracing || span_on) ? obs::NowNanos() : 0;
        const uint64_t c0 = prof_on ? obs::CycleNow() : 0;
        scratch_sk_.Clear();
        for (size_t j = 0; j < nsk; ++j) {
          const VecCol& c =
              *key_col_ptrs_[static_cast<size_t>(plan_->supergroup_slots[j])];
          scratch_sk_.Append(MaterializeRawValue(c.type[i], c.raw[i]));
        }
        STREAMOP_RETURN_NOT_OK(RunCleaningPhase(scratch_sk_, *sg));
        finals_sg = nullptr;  // cleaning removes groups / resets SFUN state
        if (prof_on) {
          const uint64_t cc = obs::CycleNow() - c0;
          clean_cycles += cc;
          profiler_->AddPhaseCycles(obs::Profiler::kClean, cc);
        }
        if (obs_on || tracing || span_on) {
          const uint64_t dur = obs::NowNanos() - t0;
          if (obs_on) {
            metrics_.cleaning_phases->Add();
            metrics_.cleaning_ns->Record(dur);
          }
          if (tracing) trace_ring_->Record("cleaning_phase", t0, dur);
          if (span_on) {
            obs::SpanRecord sr;
            sr.name = "clean";
            sr.parent_id = window_span_id_;
            sr.window_seq = window_seq_;
            sr.ts_ns = t0;
            sr.dur_ns = dur;
            sr.max_weight = live_max_weight_;
            span_ring_->Emit(sr);
          }
        }
      }
    }
  }

  if (obs_on) {
    pending_tuples_ += inline_lanes;
    pending_admitted_ += batch_admitted;
    pending_superagg_updates_ += batch_superagg_updates;
    if (inline_lanes > 0) {
      const uint64_t per_lane_ns =
          (obs::NowNanos() - batch_t0) / inline_lanes;
      metrics_.admission_ns->Record(per_lane_ns);
      if constexpr (obs::kStatsEnabled) {
        // Latency exemplar: the batch's mean per-lane admission latency,
        // with lane/admitted counts as context — one offer per batch.
        if (exemplars_->enabled()) {
          obs::Exemplar ex;
          ex.ts_ns = batch_t0;
          ex.weight = weight;
          ex.window_seq = window_seq_;
          ex.dims[0] = inline_lanes;
          ex.dims[1] = batch_admitted;
          ex.ndims = 2;
          exemplars_->OfferLatency(per_lane_ns, ex);
        }
      }
    }
    FlushPendingMetrics();
  }
  if (prof_on) {
    // Admission covers the lane loop minus the cleaning phases nested in
    // it (those are already accounted to kClean).
    const uint64_t total = obs::CycleNow() - adm_c0;
    profiler_->AddPhaseCycles(obs::Profiler::kAdmission,
                              total > clean_cycles ? total - clean_cycles : 0);
  }
  if (span_on) {
    // Both batch-level spans parent under the last window this batch fed
    // (a batch straddling a boundary attributes to the window it ended in).
    obs::SpanRecord sel;
    sel.name = "batch_select";
    sel.parent_id = window_span_id_;
    sel.window_seq = window_seq_;
    sel.ts_ns = sel_t0;
    sel.dur_ns = sel_dur;
    sel.rows = n;
    sel.shed_p = batch_shed_p;
    span_ring_->Emit(sel);
    obs::SpanRecord adm;
    adm.name = "admission";
    adm.parent_id = window_span_id_;
    adm.window_seq = window_seq_;
    adm.ts_ns = adm_t0;
    adm.dur_ns = obs::NowNanos() - adm_t0;
    adm.rows = inline_lanes;
    adm.admitted = batch_admitted;
    adm.shed_p = batch_shed_p;
    adm.max_weight = live_max_weight_;
    span_ring_->Emit(adm);
  }
  return Status::OK();
}

void SamplingOperator::RemoveGroup(const GroupKey& gk, SupergroupEntry& sg) {
  auto git = groups_.find(gk);
  if (git == groups_.end()) return;
  for (size_t i = 0; i < sg.superaggs.size(); ++i) {
    const SuperAggSpec& spec = plan_->superaggs[i];
    Value shadow = Value::Null();
    if (spec.shadow_agg_slot >= 0 &&
        static_cast<size_t>(spec.shadow_agg_slot) < git->second.aggs.size()) {
      shadow = git->second.aggs[static_cast<size_t>(spec.shadow_agg_slot)]
                   .Final();
    }
    sg.superaggs[i].OnGroupRemoved(gk, shadow);
  }
  groups_.erase(git);
  ++live_stats_.groups_removed;
  if (metrics_.enabled()) metrics_.groups_removed->Add();
}

Status SamplingOperator::RunCleaningPhase(const GroupKey& sk,
                                          SupergroupEntry& sg) {
  auto mit = supergroup_groups_.find(sk);
  if (mit == supergroup_groups_.end()) return Status::OK();

  // Superaggregates are materialized once at the start of the pass; the
  // CLEANING BY predicate sees a consistent snapshot while removals update
  // the live superaggregate state underneath.
  std::vector<Value> sa_finals;
  SuperAggFinalsInto(sg, &sa_finals);

  std::vector<GroupKey> survivors;
  survivors.reserve(mit->second.size());
  for (const GroupKey& gk : mit->second) {
    auto git = groups_.find(gk);
    if (git == groups_.end()) continue;  // already removed
    AggFinalsInto(git->second, &scratch_agg_finals_);
    EvalContext ctx;
    ctx.group_key = &gk;
    ctx.aggregates = &scratch_agg_finals_;
    ctx.superaggs = &sa_finals;
    ctx.sfun_states = sg.states.data();
    ctx.num_sfun_states = sg.states.size();
    ctx.sfun_calls = &pending_sfun_calls_;
    STREAMOP_ASSIGN_OR_RETURN(bool keep,
                              EvaluatePredicate(plan_->cleaning_by.get(), ctx));
    if (keep) {
      survivors.push_back(gk);
    } else {
      // RemoveGroup touches only the group table, so `git`/`mit` staying
      // borrowed across it is safe even with backward-shift deletion.
      RemoveGroup(gk, sg);
    }
  }
  mit->second = std::move(survivors);
  return Status::OK();
}

void SamplingOperator::FlushPendingMetrics() {
  if (!metrics_.enabled()) return;
  if (pending_tuples_ > 0) {
    metrics_.tuples->Add(pending_tuples_);
    pending_tuples_ = 0;
  }
  if (pending_admitted_ > 0) {
    metrics_.admitted->Add(pending_admitted_);
    pending_admitted_ = 0;
  }
  if (pending_superagg_updates_ > 0) {
    metrics_.superagg_updates->Add(pending_superagg_updates_);
    pending_superagg_updates_ = 0;
  }
  if (pending_sfun_calls_ > 0) {
    metrics_.sfun_calls->Add(pending_sfun_calls_);
    pending_sfun_calls_ = 0;
  }
}

Status SamplingOperator::FlushWindow() {
  // Window flushes are per-window, not per-tuple: time every one and trace
  // it as a complete event. Pending per-tuple counts are drained first so
  // the registry is exact at every window boundary.
  FlushPendingMetrics();
  const bool obs_on = metrics_.enabled();
  const bool tracing = trace_ring_->enabled();
  const bool span_on = span_ring_->enabled();
  const bool prof_on = profiler_->phase_accounting_enabled();
  const uint64_t flush_t0 =
      (obs_on || tracing || span_on) ? obs::NowNanos() : 0;
  const uint64_t flush_c0 = prof_on ? obs::CycleNow() : 0;
  uint64_t quality_cycles = 0;  // nested below, subtracted from kFlush
  if (obs_on && groups_.capacity() > 0) {
    // Load factor of the group table as the window closes, before HAVING
    // prunes groups and the table swap clears it.
    metrics_.group_table_load_factor->Set(
        static_cast<double>(groups_.size()) /
        static_cast<double>(groups_.capacity()));
  }

  // Signal end-of-window to every SFUN state that cares. Walked in
  // supergroup creation order (not table order) for deterministic output.
  for (const GroupKey& sk : supergroup_order_) {
    auto sgit = new_supergroups_.find(sk);
    if (sgit == new_supergroups_.end()) continue;
    SupergroupEntry& sg = sgit->second;
    for (size_t i = 0; i < sg.states.size(); ++i) {
      const SfunStateDef* def = plan_->sfun_states[i];
      if (def->window_final != nullptr) def->window_final(sg.states[i]);
    }
  }

  // HAVING + SELECT per group, walking supergroup membership lists so the
  // SFUN states see their own groups in a contiguous pass (the final
  // cleaning of subset-sum / reservoir depends on this). Supergroups are
  // visited in creation order and groups in membership (creation) order, so
  // emitted rows are insertion-ordered — independent of table layout.
  for (const GroupKey& sk : supergroup_order_) {
    auto mit = supergroup_groups_.find(sk);
    if (mit == supergroup_groups_.end()) continue;
    auto sgit = new_supergroups_.find(sk);
    if (sgit == new_supergroups_.end()) continue;
    SupergroupEntry& sg = sgit->second;
    std::vector<Value> sa_finals;
    SuperAggFinalsInto(sg, &sa_finals);

    for (const GroupKey& gk : mit->second) {
      auto git = groups_.find(gk);
      if (git == groups_.end()) continue;
      AggFinalsInto(git->second, &scratch_agg_finals_);
      EvalContext ctx;
      ctx.group_key = &gk;
      ctx.aggregates = &scratch_agg_finals_;
      ctx.superaggs = &sa_finals;
      ctx.sfun_states = sg.states.data();
      ctx.num_sfun_states = sg.states.size();
      ctx.sfun_calls = &pending_sfun_calls_;

      STREAMOP_ASSIGN_OR_RETURN(bool sampled,
                                EvaluatePredicate(plan_->having.get(), ctx));
      if (!sampled) {
        RemoveGroup(gk, sg);
        continue;
      }
      // Emit the output row.
      std::vector<Value> row;
      row.reserve(plan_->select_exprs.size());
      for (const ExprPtr& e : plan_->select_exprs) {
        STREAMOP_ASSIGN_OR_RETURN(Value v, Evaluate(*e, ctx));
        row.push_back(std::move(v));
      }
      output_.emplace_back(std::move(row));
      ++live_stats_.groups_output;
      ++live_stats_.tuples_output;
    }
  }

  window_stats_.push_back(live_stats_);

  if (obs_on) {
    metrics_.windows->Add();
    metrics_.rows_out->Add(live_stats_.tuples_output);
  }

  // Quality report for the window just closed: must run before the table
  // swap below while the supergroup states and membership are still live.
  if constexpr (obs::kStatsEnabled) {
    if (quality_ring_ != nullptr && quality_ring_->enabled()) {
      const uint64_t q_t0 = span_on ? obs::NowNanos() : 0;
      const uint64_t q_c0 = prof_on ? obs::CycleNow() : 0;
      RecordWindowQuality();
      if (prof_on) {
        quality_cycles = obs::CycleNow() - q_c0;
        profiler_->AddPhaseCycles(obs::Profiler::kQuality, quality_cycles);
      }
      if (span_on) {
        obs::SpanRecord qr;
        qr.name = "quality_report";
        qr.parent_id = window_span_id_;
        qr.window_seq = window_seq_;
        qr.ts_ns = q_t0;
        qr.dur_ns = obs::NowNanos() - q_t0;
        qr.rows = window_stats_.back().groups_output;
        qr.max_weight = live_max_weight_;
        span_ring_->Emit(qr);
      }
    }
  }

  // Table swap per §6.4: clear the group and membership tables, drop the
  // old supergroup table, move new -> old. clear() keeps each table's slot
  // array, and the fresh supergroup table is pre-sized from this window's
  // population, so the next window's burst does not rehash.
  const uint64_t expected_groups = window_stats_.back().peak_groups;
  const size_t expected_supergroups = new_supergroups_.size();
  groups_.clear();
  supergroup_groups_.clear();
  supergroup_order_.clear();
  DestroySupergroupStates(old_supergroups_);
  old_supergroups_ = std::move(new_supergroups_);
  new_supergroups_.clear();
  groups_.reserve(static_cast<size_t>(expected_groups));
  supergroup_groups_.reserve(expected_supergroups);
  new_supergroups_.reserve(expected_supergroups);

  if (prof_on) {
    const uint64_t total = obs::CycleNow() - flush_c0;
    profiler_->AddPhaseCycles(
        obs::Profiler::kFlush,
        total > quality_cycles ? total - quality_cycles : 0);
  }
  if (obs_on || tracing || span_on) {
    const uint64_t now = obs::NowNanos();
    const uint64_t dur = now - flush_t0;
    if (obs_on) metrics_.flush_ns->Record(dur);
    if (tracing) trace_ring_->Record("window_flush", flush_t0, dur);
    if (span_on) {
      const WindowStats& ws = window_stats_.back();
      obs::SpanRecord fr;
      fr.name = "flush";
      fr.parent_id = window_span_id_;
      fr.window_seq = window_seq_;
      fr.ts_ns = flush_t0;
      fr.dur_ns = dur;
      fr.rows = ws.tuples_output;
      fr.max_weight = live_max_weight_;
      span_ring_->Emit(fr);
      // The window root goes in last, covering open -> end of flush. Its id
      // was reserved at open, so every phase span above already points at
      // it; if spans were only enabled mid-window the id is 0 and Emit
      // draws a fresh one (the orphaned phases stay queryable by seq).
      obs::SpanRecord wr;
      wr.name = "window";
      wr.span_id = window_span_id_;
      wr.parent_id = 0;
      wr.window_seq = window_seq_;
      wr.ts_ns = window_open_ts_ns_ != 0 ? window_open_ts_ns_ : flush_t0;
      wr.dur_ns = now - wr.ts_ns;
      wr.rows = ws.tuples_in;
      wr.admitted = ws.tuples_admitted;
      wr.max_weight = live_max_weight_;
      wr.shed_p = live_max_weight_ > 1.0 ? 1.0 / live_max_weight_ : 1.0;
      span_ring_->Emit(wr);
    }
  }
  if constexpr (obs::kStatsEnabled) {
    window_span_id_ = 0;  // closed; a FinishStream flush must not re-parent
    window_open_ts_ns_ = 0;
  }
  // Unconditional (window_seq_ is stats-gated): drives checkpoint cadence.
  ++windows_flushed_;
  return Status::OK();
}

void SamplingOperator::RecordWindowQuality() {
  // Reports cover at most this many supergroups; beyond it the report is
  // flagged truncated. High-cardinality supergroup queries (per-flow
  // sampling) would otherwise make every report megabytes.
  constexpr size_t kMaxSupergroupsPerReport = 16;

  const WindowStats& ws = window_stats_.back();
  obs::WindowQualityReport rep;
  rep.node = quality_node_;
  rep.seq = quality_seq_++;
  for (size_t i = 0; i < ws.window_id.size(); ++i) {
    if (i > 0) rep.window_id += ",";
    rep.window_id += ws.window_id[i].ToString();
  }
  rep.tuples_in = ws.tuples_in;
  rep.tuples_admitted = ws.tuples_admitted;
  rep.groups_output = ws.groups_output;
  rep.max_weight = live_max_weight_;
  rep.shed_p_min = live_max_weight_ > 1.0 ? 1.0 / live_max_weight_ : 1.0;

  uint32_t sg_index = 0;
  for (const GroupKey& sk : supergroup_order_) {
    auto sgit = new_supergroups_.find(sk);
    if (sgit == new_supergroups_.end()) continue;
    ++rep.supergroups;
    if (sg_index >= kMaxSupergroupsPerReport) {
      rep.truncated = true;
      ++sg_index;
      continue;
    }
    SupergroupEntry& sg = sgit->second;

    obs::QualityContext qctx;
    qctx.window_tuples = ws.tuples_admitted;
    // Live groups of this supergroup: membership lists keep removed keys,
    // so filter against the group table. Window-boundary work only.
    auto mit = supergroup_groups_.find(sk);
    if (mit != supergroup_groups_.end()) {
      for (const GroupKey& gk : mit->second) {
        if (groups_.find(gk) != groups_.end()) ++qctx.live_groups;
      }
    }

    // Sampling-package states first: the subset-sum threshold doubles as
    // the deterministic error bound of this supergroup's sum$ below.
    double det_bound = 0.0;
    for (size_t i = 0; i < sg.states.size(); ++i) {
      const SfunStateDef* def = plan_->sfun_states[i];
      if (def->quality == nullptr) continue;
      obs::EstimatorQuality q;
      if (!def->quality(sg.states[i], qctx, &q)) continue;
      q.supergroup = sg_index;
      if (std::strcmp(q.kind, "subset_sum") == 0) {
        det_bound = std::max(det_bound, q.deterministic_bound);
      }
      rep.estimators.push_back(std::move(q));
    }

    // Superaggregates: HT estimate + variance for sum$/count$ (widened by
    // the supergroup's counter-mode threshold bound, if any), KMV sample
    // size for kth_smallest$/kth_largest$.
    for (size_t i = 0; i < sg.superaggs.size(); ++i) {
      const SuperAggState& st = sg.superaggs[i];
      const SuperAggSpec& spec = plan_->superaggs[i];
      obs::EstimatorQuality q;
      q.supergroup = sg_index;
      q.display = spec.display;
      switch (spec.kind) {
        case SuperAggKind::kSum:
        case SuperAggKind::kCount:
          q.kind = spec.kind == SuperAggKind::kSum ? "sum_ht" : "count_ht";
          q.has_estimate = true;
          q.estimate = st.Final().AsDouble();
          q.variance = st.ht_variance();
          q.deterministic_bound = det_bound;
          q.ci95 = 1.96 * std::sqrt(q.variance) + det_bound;
          break;
        case SuperAggKind::kKthSmallest:
        case SuperAggKind::kKthLargest:
          q.kind = "kmv";
          q.samples = st.tracked_values();
          q.target = spec.k;
          q.rel_error =
              spec.k > 0 ? 1.0 / std::sqrt(static_cast<double>(spec.k)) : 0.0;
          break;
        default:
          continue;  // count_distinct$ / first$ report via the SFUN hooks
      }
      rep.estimators.push_back(std::move(q));
    }
    ++sg_index;
  }

  // Latest-window gauges for /metrics scrapes: worst case across the
  // report's supergroups (the full per-supergroup detail stays in the
  // ring).
  if (metrics_.enabled() && metrics_.quality_sum_ci95 != nullptr) {
    double sum_ci = 0.0, z = 0.0, freq = 0.0, distinct_rel = 0.0;
    double coverage = -1.0;
    for (const obs::EstimatorQuality& q : rep.estimators) {
      if (std::strcmp(q.kind, "sum_ht") == 0 ||
          std::strcmp(q.kind, "count_ht") == 0) {
        sum_ci = std::max(sum_ci, q.ci95);
      } else if (std::strcmp(q.kind, "subset_sum") == 0) {
        z = std::max(z, q.threshold_z);
      } else if (std::strcmp(q.kind, "lossy_counting") == 0) {
        freq = std::max(freq, q.deterministic_bound);
      } else if (std::strcmp(q.kind, "distinct") == 0 ||
                 std::strcmp(q.kind, "kmv") == 0) {
        distinct_rel = std::max(distinct_rel, q.rel_error);
      } else if (std::strcmp(q.kind, "reservoir") == 0 && q.coverage >= 0.0) {
        coverage = coverage < 0.0 ? q.coverage : std::min(coverage, q.coverage);
      }
    }
    metrics_.quality_sum_ci95->Set(sum_ci);
    metrics_.quality_threshold_z->Set(z);
    metrics_.quality_freq_error_bound->Set(freq);
    metrics_.quality_distinct_rel_error->Set(distinct_rel);
    if (coverage >= 0.0) metrics_.quality_coverage->Set(coverage);
    metrics_.quality_shed_p_min->Set(rep.shed_p_min);
  }

  quality_ring_->Push(std::move(rep));
}

Status SamplingOperator::FinishStream() {
  if (!window_open_) return Status::OK();
  window_open_ = false;
  STREAMOP_RETURN_NOT_OK(FlushWindow());
  // The flushed window's stats now live in window_stats_; drop the stale
  // live copy so a snapshot taken from the hook (or after) never double
  // counts the final window in the replay-skip basis.
  live_stats_ = WindowStats{};
  current_window_id_.clear();
  if (window_flush_hook_) window_flush_hook_(windows_flushed_);
  return Status::OK();
}

std::vector<Tuple> SamplingOperator::DrainOutput() {
  std::vector<Tuple> out = std::move(output_);
  output_.clear();
  return out;
}

// ---- Durability (DESIGN.md §10) -------------------------------------------

namespace {

void WriteValueVec(const std::vector<Value>& v, ByteWriter& w) {
  w.U32(static_cast<uint32_t>(v.size()));
  for (const Value& x : v) x.SerializeTo(w);
}

void ReadValueVec(std::vector<Value>* v, ByteReader& r) {
  v->clear();
  const uint32_t n = r.U32();
  if (!r.CheckCount(n, 1)) return;
  v->reserve(n);
  for (uint32_t i = 0; i < n; ++i) v->push_back(Value::Deserialize(r));
}

void WriteWindowStats(const WindowStats& s, ByteWriter& w) {
  WriteValueVec(s.window_id, w);
  w.U64(s.tuples_in);
  w.U64(s.tuples_admitted);
  w.U64(s.groups_created);
  w.U64(s.groups_removed);
  w.U64(s.peak_groups);
  w.U64(s.cleaning_phases);
  w.U64(s.groups_output);
  w.U64(s.tuples_output);
  w.U64(s.late_tuples);
}

WindowStats ReadWindowStats(ByteReader& r) {
  WindowStats s;
  ReadValueVec(&s.window_id, r);
  s.tuples_in = r.U64();
  s.tuples_admitted = r.U64();
  s.groups_created = r.U64();
  s.groups_removed = r.U64();
  s.peak_groups = r.U64();
  s.cleaning_phases = r.U64();
  s.groups_output = r.U64();
  s.tuples_output = r.U64();
  s.late_tuples = r.U64();
  return s;
}

}  // namespace

void SamplingOperator::SerializeSupergroupEntry(const SupergroupEntry& sg,
                                                ByteWriter& w) const {
  w.U32(static_cast<uint32_t>(sg.superaggs.size()));
  for (const SuperAggState& s : sg.superaggs) s.SerializeTo(w);
  w.U32(static_cast<uint32_t>(sg.states.size()));
  for (size_t i = 0; i < sg.states.size(); ++i) {
    const SfunStateDef* def = plan_->sfun_states[i];
    const bool present = def->serialize != nullptr && sg.states[i] != nullptr;
    w.Bool(present);
    if (!present) continue;
    // Length-prefixed so a reader without the matching restore hook can
    // skip the blob opaquely (and a reader with one can verify it consumed
    // exactly the bytes the writer produced).
    const size_t len_pos = w.size();
    w.U32(0);
    const size_t body_start = w.size();
    def->serialize(sg.states[i], &w);
    w.PatchU32(len_pos, static_cast<uint32_t>(w.size() - body_start));
  }
}

void SamplingOperator::RestoreSupergroupEntry(SupergroupEntry* sg,
                                              ByteReader& r) {
  const uint32_t nsa = r.U32();
  if (nsa != plan_->superaggs.size()) {
    r.MarkFailed();
    return;
  }
  sg->superaggs.reserve(nsa);
  for (const SuperAggSpec& spec : plan_->superaggs) {
    sg->superaggs.emplace_back(&spec);
    sg->superaggs.back().RestoreFrom(r);
  }
  const uint32_t nst = r.U32();
  if (nst != plan_->sfun_states.size()) {
    r.MarkFailed();
    return;
  }
  sg->blobs.reserve(nst);
  sg->states.reserve(nst);
  for (size_t i = 0; i < nst; ++i) {
    const SfunStateDef* def = plan_->sfun_states[i];
    const size_t words =
        (def->size + sizeof(std::max_align_t) - 1) / sizeof(std::max_align_t);
    sg->blobs.push_back(std::make_unique<std::max_align_t[]>(words));
    void* mem = sg->blobs.back().get();
    // Fresh init, then the restore hook overwrites every serialized field
    // (RNG positions included). The seed below only survives for states
    // whose blob this build cannot decode — they restart fresh.
    def->init(mem, nullptr,
              HashCombine(plan_->seed, 0x9e3779b97f4a7c15ULL + i));
    sg->states.push_back(mem);
    if (!r.Bool()) continue;
    const uint32_t len = r.U32();
    if (def->restore != nullptr) {
      const size_t before = r.position();
      def->restore(mem, &r);
      if (r.ok() && r.position() - before != len) r.MarkFailed();
    } else {
      r.Skip(len);
      ++restore_states_skipped_;
    }
  }
}

void SamplingOperator::ResetDurableState() {
  DestroySupergroupStates(new_supergroups_);
  DestroySupergroupStates(old_supergroups_);
  groups_.clear();
  supergroup_groups_.clear();
  supergroup_order_.clear();
  output_.clear();
  window_open_ = false;
  current_window_id_.clear();
  late_tuples_total_ = 0;
  live_stats_ = WindowStats{};
  window_stats_.clear();
  supergroup_seq_ = 0;
  window_seq_ = 0;
  windows_flushed_ = 0;
  quality_seq_ = 0;
  live_max_weight_ = 1.0;
  recovery_skip_remaining_ = 0;
  restore_states_skipped_ = 0;
}

void SamplingOperator::SerializeDurableState(ByteWriter& w) const {
  // Plan-shape fingerprint: a snapshot only restores into an operator whose
  // plan has the same clause arities and seed (a different query would
  // misinterpret every table entry that follows).
  w.U32(static_cast<uint32_t>(plan_->group_by_exprs.size()));
  w.U32(static_cast<uint32_t>(plan_->supergroup_slots.size()));
  w.U32(static_cast<uint32_t>(plan_->aggregates.size()));
  w.U32(static_cast<uint32_t>(plan_->superaggs.size()));
  w.U32(static_cast<uint32_t>(plan_->sfun_states.size()));
  w.U64(plan_->seed);

  w.Bool(window_open_);
  WriteValueVec(current_window_id_, w);
  w.U64(late_tuples_total_);
  w.U64(supergroup_seq_);
  w.U64(window_seq_);
  w.U64(windows_flushed_);
  w.U64(quality_seq_);
  w.F64(live_max_weight_);
  WriteWindowStats(live_stats_, w);
  w.U64(window_stats_.size());
  for (const WindowStats& s : window_stats_) WriteWindowStats(s, w);

  // Live supergroups in creation order (the order list itself is durable:
  // output emission and window-final hooks walk it).
  w.U32(static_cast<uint32_t>(supergroup_order_.size()));
  for (const GroupKey& sk : supergroup_order_) sk.SerializeTo(w);
  w.U32(static_cast<uint32_t>(new_supergroups_.size()));
  for (const GroupKey& sk : supergroup_order_) {
    auto it = new_supergroups_.find(sk);
    if (it == new_supergroups_.end()) continue;
    sk.SerializeTo(w);
    SerializeSupergroupEntry(it->second, w);
  }

  // Previous-window supergroups (threshold carry-over). No creation-order
  // list survives the table swap, so entries are sorted by encoded key —
  // snapshots stay byte-deterministic regardless of table layout.
  {
    std::vector<std::pair<std::string, const SupergroupEntry*>> sorted;
    sorted.reserve(old_supergroups_.size());
    for (const auto& [key, entry] : old_supergroups_) {
      ByteWriter kw;
      key.SerializeTo(kw);
      sorted.emplace_back(kw.Release(), &entry);
    }
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    w.U32(static_cast<uint32_t>(sorted.size()));
    for (const auto& [kbytes, entry] : sorted) {
      w.Raw(kbytes.data(), kbytes.size());
      SerializeSupergroupEntry(*entry, w);
    }
  }

  // Membership lists (supergroup -> group keys in creation order), keyed in
  // supergroup creation order. Lists may retain removed groups; the group
  // table below is the source of truth for liveness, as in FlushWindow.
  w.U32(static_cast<uint32_t>(supergroup_groups_.size()));
  for (const GroupKey& sk : supergroup_order_) {
    auto it = supergroup_groups_.find(sk);
    if (it == supergroup_groups_.end()) continue;
    sk.SerializeTo(w);
    w.U32(static_cast<uint32_t>(it->second.size()));
    for (const GroupKey& gk : it->second) gk.SerializeTo(w);
  }

  // Group table, sorted by encoded key (groups have no global creation
  // list; per-window output order is recovered from the membership lists).
  {
    std::vector<std::pair<std::string, const GroupEntry*>> sorted;
    sorted.reserve(groups_.size());
    for (const auto& [key, entry] : groups_) {
      ByteWriter kw;
      key.SerializeTo(kw);
      sorted.emplace_back(kw.Release(), &entry);
    }
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    w.U32(static_cast<uint32_t>(sorted.size()));
    for (const auto& [kbytes, entry] : sorted) {
      w.Raw(kbytes.data(), kbytes.size());
      w.U32(static_cast<uint32_t>(entry->aggs.size()));
      for (const AggregateAccumulator& a : entry->aggs) a.SerializeTo(w);
    }
  }
}

bool SamplingOperator::RestoreDurableState(ByteReader& r) {
  // Fingerprint check before touching any state.
  const bool plan_match =
      r.U32() == plan_->group_by_exprs.size() &&
      r.U32() == plan_->supergroup_slots.size() &&
      r.U32() == plan_->aggregates.size() &&
      r.U32() == plan_->superaggs.size() &&
      r.U32() == plan_->sfun_states.size() && r.U64() == plan_->seed;
  if (!plan_match || !r.ok()) {
    r.MarkFailed();
    return false;
  }

  ResetDurableState();
  window_open_ = r.Bool();
  ReadValueVec(&current_window_id_, r);
  late_tuples_total_ = r.U64();
  supergroup_seq_ = r.U64();
  window_seq_ = r.U64();
  windows_flushed_ = r.U64();
  quality_seq_ = r.U64();
  live_max_weight_ = r.F64();
  live_stats_ = ReadWindowStats(r);
  const uint64_t nws = r.U64();
  if (r.CheckCount(nws, 8)) {
    window_stats_.reserve(static_cast<size_t>(nws));
    for (uint64_t i = 0; i < nws && r.ok(); ++i) {
      window_stats_.push_back(ReadWindowStats(r));
    }
  }

  const uint32_t norder = r.U32();
  if (r.CheckCount(norder, 4)) {
    supergroup_order_.reserve(norder);
    for (uint32_t i = 0; i < norder && r.ok(); ++i) {
      supergroup_order_.push_back(GroupKey::Deserialize(r));
    }
  }

  const uint32_t nnew = r.U32();
  for (uint32_t i = 0; i < nnew && r.ok(); ++i) {
    GroupKey sk = GroupKey::Deserialize(r);
    auto [it, inserted] = new_supergroups_.emplace(std::move(sk),
                                                   SupergroupEntry{});
    if (!inserted) {
      r.MarkFailed();
      break;
    }
    RestoreSupergroupEntry(&it->second, r);
  }

  const uint32_t nold = r.U32();
  for (uint32_t i = 0; i < nold && r.ok(); ++i) {
    GroupKey sk = GroupKey::Deserialize(r);
    auto [it, inserted] = old_supergroups_.emplace(std::move(sk),
                                                   SupergroupEntry{});
    if (!inserted) {
      r.MarkFailed();
      break;
    }
    RestoreSupergroupEntry(&it->second, r);
  }

  const uint32_t nmem = r.U32();
  for (uint32_t i = 0; i < nmem && r.ok(); ++i) {
    GroupKey sk = GroupKey::Deserialize(r);
    const uint32_t ng = r.U32();
    if (!r.CheckCount(ng, 1)) break;
    std::vector<GroupKey>& vec = supergroup_groups_[std::move(sk)];
    vec.reserve(ng);
    for (uint32_t j = 0; j < ng && r.ok(); ++j) {
      vec.push_back(GroupKey::Deserialize(r));
    }
  }

  const uint32_t ngr = r.U32();
  for (uint32_t i = 0; i < ngr && r.ok(); ++i) {
    GroupKey gk = GroupKey::Deserialize(r);
    const uint32_t na = r.U32();
    if (na != plan_->aggregates.size()) {
      r.MarkFailed();
      break;
    }
    GroupEntry entry;
    entry.aggs.reserve(na);
    for (const AggregateSpec& spec : plan_->aggregates) {
      entry.aggs.emplace_back(spec.kind, spec.param);
      entry.aggs.back().RestoreFrom(r);
    }
    if (!r.ok()) break;
    auto [it, inserted] = groups_.emplace(std::move(gk), std::move(entry));
    if (!inserted) {
      r.MarkFailed();
      break;
    }
  }

  if (!r.ok()) {
    ResetDurableState();
    return false;
  }
  // Replay-skip basis: every tuple counted into a flushed or live window
  // was fully processed before this snapshot (the boundary tuple of a
  // flush-hook snapshot counts into the next window only after the hook).
  recovery_skip_remaining_ = live_stats_.tuples_in;
  for (const WindowStats& s : window_stats_) {
    recovery_skip_remaining_ += s.tuples_in;
  }
  return true;
}

Result<std::vector<Tuple>> RunToCompletion(SamplingOperator& op,
                                           StreamSource& source) {
  // Batched drive (DESIGN.md §9) when the plan carries its input schema
  // (the batch needs a column count); hand-assembled schema-less plans
  // keep the tuple-at-a-time loop.
  if (op.plan().input_schema != nullptr) {
    TupleBatch batch(op.plan().input_schema->num_fields(), 512);
    while (source.NextBatch(&batch) > 0) {
      STREAMOP_RETURN_NOT_OK(op.ProcessBatch(batch));
    }
  } else {
    Tuple t;
    while (source.Next(&t)) {
      STREAMOP_RETURN_NOT_OK(op.Process(t));
    }
  }
  STREAMOP_RETURN_NOT_OK(op.FinishStream());
  return op.DrainOutput();
}

}  // namespace streamop
