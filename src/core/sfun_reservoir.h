// The reservoir sampling stateful-function package (§6.6):
//
//   STATE reservoir_sampling_state;
//   SFUN rsample(n [, tolerance [, mode]]) -- WHERE: candidate admission
//   SFUN rsdo_clean(count_distinct$)   -- CLEANING WHEN: candidates > T*n
//   SFUN rsclean_with()                -- CLEANING BY: keep decision
//   SFUN rsfinal_clean(count_distinct$)-- HAVING: uniform keep-n at window end
//
// Two admission modes:
//   mode 0 (default) — the paper's §4.1/§6.6 scheme: skip-based admission
//     targeting an n-reservoir, cleaning keeps n of the candidates
//     uniformly (Knuth's Algorithm S: group i of a pool of P remaining
//     groups is kept with probability keep_remaining / pool_remaining).
//     Faithful to the paper, but measurably biased toward early stream
//     positions (see EXPERIMENTS.md).
//   mode 1 — Bernoulli backoff: admit every tuple with probability p
//     (initially 1); when candidates exceed T*n, halve p and flip a fair
//     coin per candidate. Exactly uniform after the final subsample.

#ifndef STREAMOP_CORE_SFUN_RESERVOIR_H_
#define STREAMOP_CORE_SFUN_RESERVOIR_H_

#include <cstdint>

#include "common/random.h"
#include "common/status.h"
#include "sampling/reservoir.h"

namespace streamop {

/// Admission strategy for rsample (3rd argument).
enum class ReservoirSfunMode {
  kSkipCandidates = 0,   // the paper's scheme (early-position bias)
  kBernoulliBackoff = 1, // exactly uniform
};

struct ReservoirSfunState {
  uint64_t n = 0;           // target sample size; latched on first rsample
  double tolerance = 20.0;  // T in (10, 40): candidate buffer is T*n
  ReservoirSfunMode mode = ReservoirSfunMode::kSkipCandidates;
  ReservoirControl control{1, ReservoirControl::Mode::kSkip, 1};
  Pcg64 rng{1};
  double admit_p = 1.0;  // kBernoulliBackoff admission probability

  // Live cleaning pass: selection sampling (mode 0) or coin flips (mode 1).
  uint64_t pass_pool = 0;  // groups not yet examined in this pass
  uint64_t pass_keep = 0;  // groups still to keep
  bool coin_pass = false;  // mode 1 intra-window cleaning: keep w.p. 1/2
  bool final_armed = false;

  uint64_t cleanings_this_window = 0;
};

Status RegisterReservoirSfunPackage();

}  // namespace streamop

#endif  // STREAMOP_CORE_SFUN_RESERVOIR_H_
