#include "core/sfun_distinct.h"

#include <algorithm>
#include <cmath>
#include <new>

#include "expr/stateful.h"
#include "sampling/distinct.h"
#include "tuple/value.h"

namespace streamop {

namespace {

void DistinctStateInit(void* state, const void* old_state, uint64_t seed) {
  (void)seed;  // fully deterministic: the hash is supplied by the query
  auto* s = new (state) DistinctSfunState();
  if (old_state != nullptr) {
    // Distinct sampling restarts each window, but the configuration (and
    // the level, as a warm start for similar load) carries over.
    const auto* o = static_cast<const DistinctSfunState*>(old_state);
    s->capacity = o->capacity;
    s->level = o->level > 0 ? o->level - 1 : 0;  // allow recovery downwards
    s->pending_level = s->level;
  }
}

void DistinctStateDestroy(void* state) {
  static_cast<DistinctSfunState*>(state)->~DistinctSfunState();
}

void DistinctStateSerialize(const void* state, ByteWriter* w) {
  const auto* s = static_cast<const DistinctSfunState*>(state);
  w->U64(s->capacity);
  w->U32(s->level);
  w->U32(s->pending_level);
}

void DistinctStateRestore(void* state, ByteReader* r) {
  auto* s = static_cast<DistinctSfunState*>(state);
  s->capacity = r->U64();
  s->level = r->U32();
  s->pending_level = r->U32();
}

// dssample(hash [, capacity]) -> bool: level-test admission.
Value DsSample(void* state, const Value* args, size_t nargs) {
  auto* s = static_cast<DistinctSfunState*>(state);
  if (s->capacity == 0) {
    s->capacity = nargs > 1 ? args[1].AsUInt() : 256;
    if (s->capacity == 0) s->capacity = 1;
  }
  uint64_t h = args[0].AsUInt();
  return Value::Bool(HashLevel(h) >= s->level);
}

// dsdo_clean(count_distinct$) -> bool: the sample outgrew the capacity;
// raise the level by one and arm the purge pass.
Value DsDoClean(void* state, const Value* args, size_t nargs) {
  auto* s = static_cast<DistinctSfunState*>(state);
  if (s->capacity == 0) return Value::Bool(false);
  uint64_t live = nargs > 0 ? args[0].AsUInt() : 0;
  if (live <= s->capacity) return Value::Bool(false);
  if (s->level >= 63) return Value::Bool(false);
  ++s->level;
  s->pending_level = s->level;
  return Value::Bool(true);
}

// dsclean_with(hash) -> bool keep: the group's element survives the new
// level.
Value DsCleanWith(void* state, const Value* args, size_t nargs) {
  auto* s = static_cast<DistinctSfunState*>(state);
  uint64_t h = nargs > 0 ? args[0].AsUInt() : 0;
  return Value::Bool(HashLevel(h) >= s->pending_level);
}

// dsfactor() -> uint: the inverse inclusion probability 2^level.
Value DsFactor(void* state, const Value* /*args*/, size_t /*nargs*/) {
  auto* s = static_cast<DistinctSfunState*>(state);
  return Value::UInt(uint64_t{1} << s->level);
}

// dslevel() -> uint: the current level.
Value DsLevel(void* state, const Value* /*args*/, size_t /*nargs*/) {
  auto* s = static_cast<DistinctSfunState*>(state);
  return Value::UInt(s->level);
}

// SfunStateDef::quality: the live groups are the distinct values whose
// hash survives the current level, each standing in for 2^level values, so
// the distinct count estimate is live·2^level. Gibbons-style distinct
// sampling with k retained values has relative error ~1/√k; the variance
// of the HT estimate is bounded by estimate·(2^level − 1).
bool DistinctQuality(const void* state, const obs::QualityContext& ctx,
                     obs::EstimatorQuality* out) {
  const auto* s = static_cast<const DistinctSfunState*>(state);
  if (s->capacity == 0) return false;  // dssample never called
  const double scale = static_cast<double>(uint64_t{1} << s->level);
  out->kind = "distinct";
  out->display = "distinct_sampling_state";
  out->samples = ctx.live_groups;
  out->target = s->capacity;
  out->has_estimate = true;
  out->estimate = static_cast<double>(ctx.live_groups) * scale;
  out->variance = out->estimate * (scale - 1.0);
  out->ci95 = 1.96 * std::sqrt(out->variance);
  out->rel_error =
      1.0 / std::sqrt(static_cast<double>(std::max<uint64_t>(1, ctx.live_groups)));
  return true;
}

}  // namespace

Status RegisterDistinctSfunPackage() {
  SfunRegistry& reg = SfunRegistry::Global();
  if (reg.FindState("distinct_sampling_state") != nullptr) return Status::OK();
  SfunStateDef state;
  state.name = "distinct_sampling_state";
  state.size = sizeof(DistinctSfunState);
  state.init = DistinctStateInit;
  state.destroy = DistinctStateDestroy;
  state.quality = DistinctQuality;
  state.serialize = DistinctStateSerialize;
  state.restore = DistinctStateRestore;
  STREAMOP_RETURN_NOT_OK(reg.RegisterState(state));
  const SfunStateDef* sd = reg.FindState(state.name);

  STREAMOP_RETURN_NOT_OK(
      reg.RegisterFunction({"dssample", sd, 1, 2, DsSample}));
  STREAMOP_RETURN_NOT_OK(
      reg.RegisterFunction({"dsdo_clean", sd, 1, 1, DsDoClean}));
  STREAMOP_RETURN_NOT_OK(
      reg.RegisterFunction({"dsclean_with", sd, 1, 1, DsCleanWith}));
  STREAMOP_RETURN_NOT_OK(reg.RegisterFunction({"dsfactor", sd, 0, 0, DsFactor}));
  STREAMOP_RETURN_NOT_OK(reg.RegisterFunction({"dslevel", sd, 0, 0, DsLevel}));
  return Status::OK();
}

}  // namespace streamop
