#include "core/sfun_subset_sum.h"

#include <cmath>
#include <new>

#include "common/hash.h"
#include "expr/stateful.h"
#include "obs/metrics.h"
#include "obs/trace_ring.h"
#include "tuple/value.h"

namespace streamop {

namespace {

constexpr double kMinZ = 1e-6;

// Observability hook for threshold adjustments: an instant trace event
// carrying the new z (visible in the chrome-trace timeline between
// cleaning phases) plus a process-wide counter. SFUN packages have no
// per-operator channel, so both go to the process defaults.
void TraceZAdjust(const char* site, double z_new) {
  if constexpr (obs::kStatsEnabled) {
    static obs::Counter* adjusts = obs::MetricRegistry::Default().GetCounter(
        "streamop_sfun_z_adjustments_total");
    adjusts->Add();
    obs::TraceRing& ring = obs::TraceRing::Default();
    if (ring.enabled()) ring.Instant(site, obs::NowNanos(), "z", z_new);
  }
}

void SubsetSumStateInit(void* state, const void* old_state, uint64_t seed) {
  auto* s = new (state) SubsetSumSfunState();
  s->seed = seed;
  if (old_state != nullptr) {
    const auto* o = static_cast<const SubsetSumSfunState*>(old_state);
    // Carry configuration and the closing threshold into the new window.
    s->target = o->target;
    s->beta = o->beta;
    s->relax_factor = o->relax_factor;
    s->initial_z = o->initial_z;
    s->mode = o->mode;
    double z_next = o->admit.z();
    if (o->relax_factor > 1.0) z_next /= o->relax_factor;  // relaxed scheme
    if (z_next < kMinZ) z_next = kMinZ;
    s->admit = ThresholdSamplerCore(z_next, s->mode,
                                    HashCombine(seed, ++s->rng_seq));
    s->z_prev = z_next;
  }
}

void SubsetSumStateDestroy(void* state) {
  static_cast<SubsetSumSfunState*>(state)->~SubsetSumSfunState();
}

void SubsetSumStateSerialize(const void* state, ByteWriter* w) {
  const auto* s = static_cast<const SubsetSumSfunState*>(state);
  s->admit.SerializeTo(*w);
  s->clean.SerializeTo(*w);
  w->F64(s->z_prev);
  w->F64(s->initial_z);
  w->U64(s->target);
  w->F64(s->beta);
  w->F64(s->relax_factor);
  w->U8(static_cast<uint8_t>(s->mode));
  w->U64(s->seed);
  w->U64(s->rng_seq);
  w->U64(s->large_count);
  w->U64(s->cleanings_this_window);
  w->U64(s->admitted_this_window);
  w->Bool(s->final_adjust_done);
  w->Bool(s->final_pass_through);
}

void SubsetSumStateRestore(void* state, ByteReader* r) {
  auto* s = static_cast<SubsetSumSfunState*>(state);
  s->admit.RestoreFrom(*r);
  s->clean.RestoreFrom(*r);
  s->z_prev = r->F64();
  s->initial_z = r->F64();
  s->target = r->U64();
  s->beta = r->F64();
  s->relax_factor = r->F64();
  s->mode = static_cast<ThresholdMode>(r->U8());
  s->seed = r->U64();
  s->rng_seq = r->U64();
  s->large_count = r->U64();
  s->cleanings_this_window = r->U64();
  s->admitted_this_window = r->U64();
  s->final_adjust_done = r->Bool();
  s->final_pass_through = r->Bool();
}

// ssample(x, N [, beta [, relax_factor [, z0 [, mode]]]]) -> bool: basic
// threshold admission of a tuple with weight x, targeting N samples per
// window. mode 1 switches small-tuple admission from the counter scheme to
// the probabilistic DLT rule.
Value SsSample(void* state, const Value* args, size_t nargs) {
  auto* s = static_cast<SubsetSumSfunState*>(state);
  if (s->target == 0) {
    // First call in this supergroup's lifetime: latch the configuration.
    s->target = nargs > 1 ? args[1].AsUInt() : 1000;
    if (s->target == 0) s->target = 1;
    if (nargs > 2) s->beta = args[2].AsDouble();
    if (s->beta < 1.0) s->beta = 1.0;
    if (nargs > 3) {
      s->relax_factor = args[3].AsDouble();
      if (s->relax_factor < 1.0) s->relax_factor = 1.0;
    }
    if (nargs > 5 && args[5].AsUInt() == 1) {
      s->mode = ThresholdMode::kProbabilistic;
    }
    double z0 = s->admit.z();
    if (nargs > 4 && args[4].AsDouble() > 0.0) {
      z0 = args[4].AsDouble();
      s->initial_z = z0;
      s->z_prev = z0;
    }
    s->admit = ThresholdSamplerCore(z0, s->mode,
                                    HashCombine(s->seed, ++s->rng_seq));
  }
  double x = args[0].AsDouble();
  ThresholdDecision d = s->admit.Offer(x);
  if (d.sampled) {
    ++s->admitted_this_window;
    if (d.was_large) ++s->large_count;
  }
  return Value::Bool(d.sampled);
}

// ssdo_clean(count_distinct$) -> bool: trigger a cleaning phase when the
// live sample exceeds beta*N. On trigger, adjusts z aggressively and arms
// the cleaning core.
Value SsDoClean(void* state, const Value* args, size_t nargs) {
  auto* s = static_cast<SubsetSumSfunState*>(state);
  uint64_t live = nargs > 0 ? args[0].AsUInt() : 0;
  if (s->target == 0) return Value::Bool(false);
  double trigger = s->beta * static_cast<double>(s->target);
  if (static_cast<double>(live) <= trigger) return Value::Bool(false);

  double z_old = s->admit.z();
  double z_new = AggressiveZAdjust(z_old, live, s->target, s->large_count);
  if (z_new <= z_old) z_new = z_old * 2.0;  // force progress
  s->z_prev = z_old;
  s->clean = ThresholdSamplerCore(z_new, s->mode,
                                  HashCombine(s->seed, ++s->rng_seq));
  s->admit.set_z(z_new);
  s->admit.ResetCounter();
  s->large_count = 0;  // re-counted by ssclean_with over survivors
  ++s->cleanings_this_window;
  TraceZAdjust("ss_z_adjust_cleaning", z_new);
  return Value::Bool(true);
}

// Shared by ssclean_with and the final cleaning: re-offer a retained
// group's weight at the armed threshold. Weights below the previous
// threshold stand in at z_prev (they represent weight z_prev).
Value CleanKeepDecision(SubsetSumSfunState* s, double weight) {
  double w = weight < s->z_prev ? s->z_prev : weight;
  ThresholdDecision d = s->clean.Offer(w);
  if (d.sampled && d.was_large) ++s->large_count;
  return Value::Bool(d.sampled);
}

// ssclean_with(weight) -> bool keep.
Value SsCleanWith(void* state, const Value* args, size_t nargs) {
  auto* s = static_cast<SubsetSumSfunState*>(state);
  double w = nargs > 0 ? args[0].AsDouble() : 0.0;
  return CleanKeepDecision(s, w);
}

// ssfinal_clean(weight, count_distinct$) -> bool keep: window-final
// cleaning. The first call decides whether a final subsample is needed
// (live > N) and arms the cleaning core once for the whole pass.
Value SsFinalClean(void* state, const Value* args, size_t nargs) {
  auto* s = static_cast<SubsetSumSfunState*>(state);
  if (!s->final_adjust_done) {
    s->final_adjust_done = true;
    uint64_t live = nargs > 1 ? args[1].AsUInt() : 0;
    if (s->target == 0 || live <= s->target) {
      s->final_pass_through = true;
    } else {
      double z_old = s->admit.z();
      double z_new = AggressiveZAdjust(z_old, live, s->target, s->large_count);
      if (z_new <= z_old) z_new = z_old * 1.0000001;
      s->z_prev = z_old;
      s->clean = ThresholdSamplerCore(z_new, s->mode,
                                      HashCombine(s->seed, ++s->rng_seq));
      s->admit.set_z(z_new);  // ssthreshold() must report the final z
      s->large_count = 0;
      ++s->cleanings_this_window;
      s->final_pass_through = false;
      TraceZAdjust("ss_z_adjust_final", z_new);
    }
  }
  if (s->final_pass_through) return Value::Bool(true);
  double w = nargs > 0 ? args[0].AsDouble() : 0.0;
  return CleanKeepDecision(s, w);
}

// ssinit(N [, beta [, relax_factor [, z0 [, mode]]]]) -> true: latches the
// sampler configuration WITHOUT making a sampling decision, always
// admitting the tuple. This is the admission function for *flow-integrated*
// subset-sum sampling (§8): every packet must reach its flow's group, and
// the threshold machinery only acts through the cleaning phases, sampling
// and purging small flows when the group table exceeds beta*N.
Value SsInit(void* state, const Value* args, size_t nargs) {
  auto* s = static_cast<SubsetSumSfunState*>(state);
  if (s->target == 0) {
    s->target = nargs > 0 ? args[0].AsUInt() : 1000;
    if (s->target == 0) s->target = 1;
    if (nargs > 1) s->beta = args[1].AsDouble();
    if (s->beta < 1.0) s->beta = 1.0;
    if (nargs > 2) {
      s->relax_factor = args[2].AsDouble();
      if (s->relax_factor < 1.0) s->relax_factor = 1.0;
    }
    if (nargs > 4 && args[4].AsUInt() == 1) {
      s->mode = ThresholdMode::kProbabilistic;
    }
    double z0 = s->admit.z();
    if (nargs > 3 && args[3].AsDouble() > 0.0) {
      z0 = args[3].AsDouble();
      s->initial_z = z0;
      s->z_prev = z0;
    }
    s->admit = ThresholdSamplerCore(z0, s->mode,
                                    HashCombine(s->seed, ++s->rng_seq));
  }
  return Value::Bool(true);
}

// ssthreshold() -> double: the current threshold z; UMAX(sum(len),
// ssthreshold()) in the SELECT clause yields the weight-adjusted estimate.
Value SsThreshold(void* state, const Value* /*args*/, size_t /*nargs*/) {
  auto* s = static_cast<SubsetSumSfunState*>(state);
  return Value::Double(s->admit.z());
}

// sscleanings() -> uint: cleaning phases triggered this window (Fig. 4).
Value SsCleanings(void* state, const Value* /*args*/, size_t /*nargs*/) {
  auto* s = static_cast<SubsetSumSfunState*>(state);
  return Value::UInt(s->cleanings_this_window);
}

// SfunStateDef::quality: accuracy of the threshold sampler at window
// close. Counter mode (§4.4): every group's reported weight deviates from
// its true weight by less than the final threshold z — z is the window's
// deterministic error bound. Probabilistic (DLT) mode: a small item of
// weight x is admitted with p = x/z, so its HT-estimate variance is
// x(z−x) ≤ z²/4; with `samples − large` small items retained, the
// subset-sum variance is bounded by (samples − large)·z²/4.
bool SubsetSumQuality(const void* state, const obs::QualityContext& /*ctx*/,
                      obs::EstimatorQuality* out) {
  const auto* s = static_cast<const SubsetSumSfunState*>(state);
  if (s->target == 0) return false;  // never configured: nothing sampled
  out->kind = "subset_sum";
  out->display = "subsetsum_sampling_state";
  out->threshold_z = s->admit.z();
  out->samples = s->admitted_this_window;
  out->target = s->target;
  if (s->mode == ThresholdMode::kCounter) {
    out->deterministic_bound = out->threshold_z;
  } else {
    uint64_t small = s->admitted_this_window > s->large_count
                         ? s->admitted_this_window - s->large_count
                         : 0;
    out->variance = static_cast<double>(small) * out->threshold_z *
                    out->threshold_z / 4.0;
  }
  out->ci95 = 1.96 * std::sqrt(out->variance) + out->deterministic_bound;
  return true;
}

}  // namespace

Status RegisterSubsetSumSfunPackage() {
  SfunRegistry& reg = SfunRegistry::Global();
  if (reg.FindState("subsetsum_sampling_state") != nullptr) {
    return Status::OK();  // already registered
  }
  SfunStateDef state;
  state.name = "subsetsum_sampling_state";
  state.size = sizeof(SubsetSumSfunState);
  state.init = SubsetSumStateInit;
  state.destroy = SubsetSumStateDestroy;
  state.window_final = nullptr;
  state.quality = SubsetSumQuality;
  state.serialize = SubsetSumStateSerialize;
  state.restore = SubsetSumStateRestore;
  STREAMOP_RETURN_NOT_OK(reg.RegisterState(state));
  const SfunStateDef* sd = reg.FindState(state.name);

  STREAMOP_RETURN_NOT_OK(reg.RegisterFunction({"ssample", sd, 1, 6, SsSample}));
  STREAMOP_RETURN_NOT_OK(
      reg.RegisterFunction({"ssdo_clean", sd, 1, 1, SsDoClean}));
  STREAMOP_RETURN_NOT_OK(
      reg.RegisterFunction({"ssclean_with", sd, 1, 1, SsCleanWith}));
  STREAMOP_RETURN_NOT_OK(
      reg.RegisterFunction({"ssfinal_clean", sd, 1, 2, SsFinalClean}));
  STREAMOP_RETURN_NOT_OK(reg.RegisterFunction({"ssinit", sd, 1, 5, SsInit}));
  STREAMOP_RETURN_NOT_OK(
      reg.RegisterFunction({"ssthreshold", sd, 0, 0, SsThreshold}));
  STREAMOP_RETURN_NOT_OK(
      reg.RegisterFunction({"sscleanings", sd, 0, 0, SsCleanings}));
  return Status::OK();
}

}  // namespace streamop
