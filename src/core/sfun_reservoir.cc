#include "core/sfun_reservoir.h"

#include <algorithm>
#include <cmath>
#include <new>

#include "expr/stateful.h"
#include "tuple/value.h"

namespace streamop {

namespace {

void ReservoirStateInit(void* state, const void* old_state, uint64_t seed) {
  auto* s = new (state) ReservoirSfunState();
  s->rng = Pcg64(seed ^ 0x7e57ab1eULL);
  if (old_state != nullptr) {
    const auto* o = static_cast<const ReservoirSfunState*>(old_state);
    if (o->n > 0) {
      s->n = o->n;
      s->tolerance = o->tolerance;
      s->mode = o->mode;
      s->control = ReservoirControl(o->n, ReservoirControl::Mode::kSkip, seed);
    }
  }
}

void ReservoirStateDestroy(void* state) {
  static_cast<ReservoirSfunState*>(state)->~ReservoirSfunState();
}

void ReservoirStateSerialize(const void* state, ByteWriter* w) {
  const auto* s = static_cast<const ReservoirSfunState*>(state);
  w->U64(s->n);
  w->F64(s->tolerance);
  w->U8(static_cast<uint8_t>(s->mode));
  s->control.SerializeTo(*w);
  s->rng.SerializeTo(*w);
  w->F64(s->admit_p);
  w->U64(s->pass_pool);
  w->U64(s->pass_keep);
  w->Bool(s->coin_pass);
  w->Bool(s->final_armed);
  w->U64(s->cleanings_this_window);
}

void ReservoirStateRestore(void* state, ByteReader* r) {
  auto* s = static_cast<ReservoirSfunState*>(state);
  s->n = r->U64();
  s->tolerance = r->F64();
  s->mode = static_cast<ReservoirSfunMode>(r->U8());
  s->control.RestoreFrom(*r);
  s->rng.RestoreFrom(*r);
  s->admit_p = r->F64();
  s->pass_pool = r->U64();
  s->pass_keep = r->U64();
  s->coin_pass = r->Bool();
  s->final_armed = r->Bool();
  s->cleanings_this_window = r->U64();
}

// rsample(n [, tolerance [, mode]]) -> bool: admit this tuple as a
// candidate. mode 1 switches from the paper's skip scheme to the exactly
// uniform Bernoulli-backoff scheme.
Value RsSample(void* state, const Value* args, size_t nargs) {
  auto* s = static_cast<ReservoirSfunState*>(state);
  if (s->n == 0) {
    s->n = nargs > 0 ? args[0].AsUInt() : 100;
    if (s->n == 0) s->n = 1;
    if (nargs > 1) {
      s->tolerance = args[1].AsDouble();
      if (s->tolerance < 1.5) s->tolerance = 1.5;
    }
    if (nargs > 2 && args[2].AsUInt() == 1) {
      s->mode = ReservoirSfunMode::kBernoulliBackoff;
    }
    s->control =
        ReservoirControl(s->n, ReservoirControl::Mode::kSkip, s->rng.Next64());
  }
  if (s->mode == ReservoirSfunMode::kBernoulliBackoff) {
    return Value::Bool(s->admit_p >= 1.0 || s->rng.NextBernoulli(s->admit_p));
  }
  return Value::Bool(s->control.Offer());
}

// Arms a selection-sampling pass keeping `keep` of `pool` groups.
void ArmPass(ReservoirSfunState* s, uint64_t pool, uint64_t keep) {
  s->pass_pool = pool;
  s->pass_keep = keep < pool ? keep : pool;
}

// One Knuth-S decision: keep with probability keep_remaining/pool_remaining.
bool PassKeep(ReservoirSfunState* s) {
  if (s->pass_pool == 0) return true;  // defensive: pass not armed
  bool keep = s->rng.NextBounded(s->pass_pool) < s->pass_keep;
  --s->pass_pool;
  if (keep && s->pass_keep > 0) --s->pass_keep;
  return keep;
}

// rsdo_clean(count_distinct$) -> bool: candidates exceeded T*n.
Value RsDoClean(void* state, const Value* args, size_t nargs) {
  auto* s = static_cast<ReservoirSfunState*>(state);
  uint64_t live = nargs > 0 ? args[0].AsUInt() : 0;
  if (s->n == 0) return Value::Bool(false);
  double cap = s->tolerance * static_cast<double>(s->n);
  if (static_cast<double>(live) <= cap) return Value::Bool(false);
  if (s->mode == ReservoirSfunMode::kBernoulliBackoff) {
    s->admit_p *= 0.5;
    s->coin_pass = true;
  } else {
    ArmPass(s, live, s->n);
  }
  ++s->cleanings_this_window;
  return Value::Bool(true);
}

// rsclean_with() -> bool keep.
Value RsCleanWith(void* state, const Value* /*args*/, size_t /*nargs*/) {
  auto* s = static_cast<ReservoirSfunState*>(state);
  if (s->coin_pass) return Value::Bool(s->rng.NextBernoulli(0.5));
  return Value::Bool(PassKeep(s));
}

// rsfinal_clean(count_distinct$) -> bool keep: uniform n-subset at the
// window boundary; the first call arms the pass with the live group count.
Value RsFinalClean(void* state, const Value* args, size_t nargs) {
  auto* s = static_cast<ReservoirSfunState*>(state);
  if (!s->final_armed) {
    s->final_armed = true;
    s->coin_pass = false;  // the final pass is exact selection sampling
    uint64_t live = nargs > 0 ? args[0].AsUInt() : 0;
    if (s->n == 0 || live <= s->n) {
      s->pass_pool = 0;  // pass-through
      s->pass_keep = 0;
      return Value::Bool(true);
    }
    ArmPass(s, live, s->n);
  }
  if (s->pass_pool == 0 && s->pass_keep == 0) return Value::Bool(true);
  return Value::Bool(PassKeep(s));
}

// rscleanings() -> uint: cleaning phases this window.
Value RsCleanings(void* state, const Value* /*args*/, size_t /*nargs*/) {
  auto* s = static_cast<ReservoirSfunState*>(state);
  return Value::UInt(s->cleanings_this_window);
}

// SfunStateDef::quality: a size-n uniform sample of an N-record window
// covers min(1, n/N) of it, and proportion estimates off the sample have
// worst-case relative half-width ~1/√n. The skip-scheme control knows N
// exactly; the Bernoulli-backoff variant admits at probability admit_p,
// which *is* its expected coverage.
bool ReservoirQuality(const void* state, const obs::QualityContext& ctx,
                      obs::EstimatorQuality* out) {
  const auto* s = static_cast<const ReservoirSfunState*>(state);
  if (s->n == 0) return false;  // rsample never called
  out->kind = "reservoir";
  out->display = "reservoir_sampling_state";
  out->target = s->n;
  out->samples = std::min<uint64_t>(s->n, ctx.live_groups);
  if (s->mode == ReservoirSfunMode::kBernoulliBackoff) {
    out->coverage = std::min(1.0, s->admit_p);
  } else {
    uint64_t seen = s->control.records_seen();
    out->coverage =
        seen == 0 ? 1.0
                  : std::min(1.0, static_cast<double>(s->n) /
                                      static_cast<double>(seen));
  }
  out->rel_error = 1.0 / std::sqrt(static_cast<double>(s->n));
  return true;
}

}  // namespace

Status RegisterReservoirSfunPackage() {
  SfunRegistry& reg = SfunRegistry::Global();
  if (reg.FindState("reservoir_sampling_state") != nullptr) {
    return Status::OK();
  }
  SfunStateDef state;
  state.name = "reservoir_sampling_state";
  state.size = sizeof(ReservoirSfunState);
  state.init = ReservoirStateInit;
  state.destroy = ReservoirStateDestroy;
  state.quality = ReservoirQuality;
  state.serialize = ReservoirStateSerialize;
  state.restore = ReservoirStateRestore;
  STREAMOP_RETURN_NOT_OK(reg.RegisterState(state));
  const SfunStateDef* sd = reg.FindState(state.name);

  STREAMOP_RETURN_NOT_OK(reg.RegisterFunction({"rsample", sd, 0, 3, RsSample}));
  STREAMOP_RETURN_NOT_OK(
      reg.RegisterFunction({"rsdo_clean", sd, 1, 1, RsDoClean}));
  STREAMOP_RETURN_NOT_OK(
      reg.RegisterFunction({"rsclean_with", sd, 0, 0, RsCleanWith}));
  STREAMOP_RETURN_NOT_OK(
      reg.RegisterFunction({"rsfinal_clean", sd, 0, 1, RsFinalClean}));
  STREAMOP_RETURN_NOT_OK(
      reg.RegisterFunction({"rscleanings", sd, 0, 0, RsCleanings}));
  return Status::OK();
}

}  // namespace streamop
