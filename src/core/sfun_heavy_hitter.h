// Heavy-hitter (Manku-Motwani lossy counting) helper stateful functions of
// the §6.6 query:
//
//   STATE heavy_hitter_state;
//   SFUN local_count(w)      -- counts tuples; true once every w tuples,
//                               advancing the bucket id (CLEANING WHEN)
//   SFUN current_bucket()    -- the current bucket id (CLEANING BY /
//                               aggregated with first() per group)
//
// The per-element counting itself is ordinary grouping + count(*); pruning
// is the CLEANING BY predicate `count(*) >= current_bucket() -
// first(current_bucket())`.

#ifndef STREAMOP_CORE_SFUN_HEAVY_HITTER_H_
#define STREAMOP_CORE_SFUN_HEAVY_HITTER_H_

#include <cstdint>

#include "common/status.h"

namespace streamop {

struct HeavyHitterSfunState {
  uint64_t tuples_seen = 0;
  uint64_t current_bucket = 1;
};

Status RegisterHeavyHitterSfunPackage();

}  // namespace streamop

#endif  // STREAMOP_CORE_SFUN_HEAVY_HITTER_H_
