// The subset-sum sampling stateful-function package (§6.2/§6.5), the exact
// set of functions the paper added to the Gigascope runtime library:
//
//   STATE subsetsum_sampling_state;
//   SFUN ssample(x, N [, beta [, relax_factor [, z0 [, mode]]]])  -- WHERE
//        (mode: 0 = counter admission per §4.4, 1 = probabilistic DLT)
//   SFUN ssdo_clean(count_distinct)                      -- CLEANING WHEN
//   SFUN ssclean_with(weight)                            -- CLEANING BY
//   SFUN ssfinal_clean(weight, count_distinct)           -- HAVING
//   SFUN ssthreshold()                                   -- SELECT
//   SFUN ssinit(N, ...)     -- WHERE (flow-integrated variant: admit all)
//   SFUN sscleanings()                                   -- SELECT (stats)
//
// Semantics: basic threshold admission in WHERE; when the live sample
// exceeds beta*N the threshold is adjusted aggressively and every retained
// group is re-offered at the new threshold (ssclean_with), with weights
// below the previous threshold standing in at z_prev; the window-final
// cleaning enforces |S| <= N; and the closing threshold seeds the next
// window's state — divided by relax_factor under the paper's *relaxed*
// scheme (relax_factor = 1 reproduces the original, non-relaxed algorithm).

#ifndef STREAMOP_CORE_SFUN_SUBSET_SUM_H_
#define STREAMOP_CORE_SFUN_SUBSET_SUM_H_

#include <cstdint>

#include "common/status.h"
#include "sampling/threshold_core.h"

namespace streamop {

/// The shared state behind the ss* functions. Exposed in a header so that
/// tests and the engine can introspect it (the paper prints the same
/// counters from its instrumented runs).
struct SubsetSumSfunState {
  ThresholdSamplerCore admit{1.0};  // stream admission at current z
  ThresholdSamplerCore clean{1.0};  // re-offer core during a cleaning phase
  double z_prev = 1.0;              // threshold before the latest adjustment
  double initial_z = 1.0;

  uint64_t target = 0;       // N; 0 until the first ssample call sets it
  double beta = 2.0;         // cleaning trigger at beta*N
  double relax_factor = 1.0; // 1 = non-relaxed; paper uses f = 10
  ThresholdMode mode = ThresholdMode::kCounter;
  uint64_t seed = 1;         // per-supergroup RNG stream
  uint64_t rng_seq = 0;      // derives fresh streams for cleaning cores

  uint64_t large_count = 0;  // B: admitted weights exceeding z
  uint64_t cleanings_this_window = 0;
  uint64_t admitted_this_window = 0;

  bool final_adjust_done = false;  // first ssfinal_clean call latch
  bool final_pass_through = false; // window ended with |S| <= N
};

/// Registers the package with SfunRegistry::Global(); idempotent.
Status RegisterSubsetSumSfunPackage();

}  // namespace streamop

#endif  // STREAMOP_CORE_SFUN_SUBSET_SUM_H_
