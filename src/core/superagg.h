// Superaggregates (§6.3): aggregates of the supergroup rather than the
// group, maintained incrementally as groups are created, updated and —
// crucially — *removed* by cleaning phases.
//
// Built-ins:
//   count_distinct$(*)            — number of live groups in the supergroup;
//   kth_smallest$(gbvar, k)       — kth smallest value of a group-by
//                                   variable over live groups (min-hash);
//   sum$(expr) / count$(expr)     — subtractable totals over qualifying
//                                   tuples, corrected on group removal via a
//                                   shadow group aggregate;
//   first$(expr)                  — first qualifying tuple's value in the
//                                   window.

#ifndef STREAMOP_CORE_SUPERAGG_H_
#define STREAMOP_CORE_SUPERAGG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "expr/aggregate.h"
#include "expr/expr.h"
#include "tuple/tuple.h"

namespace streamop {

enum class SuperAggKind {
  kCountDistinct,  // count_distinct$(*)
  kKthSmallest,    // kth_smallest$(group_by_var, k)
  kKthLargest,     // kth_largest$(group_by_var, k) — priority sampling's tau
  kSum,            // sum$(expr over input)
  kCount,          // count$(*)
  kFirst,          // first$(expr over input)
};

/// Resolves a superaggregate name ("count_distinct", "kth_smallest_value",
/// "sum", ...). The '$' suffix is stripped by the parser.
bool LookupSuperAggKind(const std::string& name, SuperAggKind* kind);

/// Analyzer output describing one superaggregate instance.
struct SuperAggSpec {
  SuperAggKind kind = SuperAggKind::kCountDistinct;
  ExprPtr arg;              // input expr (kSum/kCount/kFirst); null for (*)
  int group_by_slot = -1;   // kKthSmallest: which group-by variable
  uint64_t k = 0;           // kKthSmallest: rank
  int shadow_agg_slot = -1; // kSum/kCount: hidden group aggregate to
                            // subtract on group removal
  std::string display;
};

/// Runtime state of one superaggregate within one supergroup.
class SuperAggState {
 public:
  explicit SuperAggState(const SuperAggSpec* spec) : spec_(spec) {}

  /// A qualifying tuple contributed `v` (kSum/kCount/kFirst only).
  void OnTuple(const Value& v) { OnTuple(v, 1.0); }

  /// Weighted variant: under load shedding every admitted tuple carries its
  /// Horvitz–Thompson weight 1/p so sum$/count$ remain unbiased totals.
  void OnTuple(const Value& v, double weight);

  /// A new group was created with the given key.
  void OnGroupCreated(const GroupKey& key);

  /// A group was removed by a cleaning phase. `key` is its group key and
  /// `shadow_value` the final value of the shadow aggregate (Null if none).
  void OnGroupRemoved(const GroupKey& key, const Value& shadow_value);

  /// Current superaggregate value. kth_smallest$ (kth_largest$) with fewer
  /// than k live groups returns UInt max (0) so that the comparison admits
  /// everything while the sample is still filling.
  Value Final() const;

  /// Horvitz–Thompson variance estimate of Final() for sum$/count$ under
  /// Bernoulli admission (load shedding): each tuple admitted with weight
  /// w = 1/p contributes w(w−1)x², the classic unbiased estimator — zero
  /// when no tuple was shed. Conservative across group removals (removed
  /// groups' contributions are kept; variance never shrinks).
  double ht_variance() const { return ht_var_; }

  /// Live sample size behind kth_smallest$/kth_largest$ (KMV quality).
  uint64_t tracked_values() const { return values_.size(); }
  bool weighted() const { return weighted_; }

  const SuperAggSpec* spec() const { return spec_; }

  /// Checkpoint: the full partial state. The spec pointer is not part of
  /// the snapshot — RestoreFrom is called on a state constructed with the
  /// plan's spec, mirroring how SFUN restores ride on init().
  void SerializeTo(ByteWriter& w) const;
  void RestoreFrom(ByteReader& r);

 private:
  const SuperAggSpec* spec_;
  uint64_t group_count_ = 0;
  AggregateAccumulator acc_{AggregateKind::kSum};
  uint64_t tuple_count_ = 0;
  // count$ Horvitz–Thompson state: weighted_count_ tracks sum(1/p_i) and
  // becomes authoritative once any tuple arrived with weight != 1.0.
  double weighted_count_ = 0.0;
  double ht_var_ = 0.0;
  bool weighted_ = false;
  Value first_;
  bool has_first_ = false;
  // kKthSmallest: multiset of the tracked group-by values over live groups.
  std::multimap<Value, char, bool (*)(const Value&, const Value&)> values_{
      &ValueLess};
};

}  // namespace streamop

#endif  // STREAMOP_CORE_SUPERAGG_H_
