#include "core/sfun_distinct.h"
#include "core/sfun_heavy_hitter.h"
#include "core/sfun_reservoir.h"
#include "core/sfun_subset_sum.h"
#include "expr/stateful.h"

namespace streamop {

void EnsureBuiltinSfunPackagesRegistered() {
  // Registration is idempotent; Status failures here would indicate a
  // conflicting user registration of the same names, which the individual
  // packages treat as "already present".
  (void)RegisterSubsetSumSfunPackage();
  (void)RegisterReservoirSfunPackage();
  (void)RegisterHeavyHitterSfunPackage();
  (void)RegisterDistinctSfunPackage();
}

}  // namespace streamop
