// The generic sampling operator (§5), the paper's core contribution.
//
// A sampling query
//
//   SELECT <exprs> FROM <stream> WHERE <pred>
//   GROUP BY <vars> [SUPERGROUP <vars>] [HAVING <pred>]
//   CLEANING WHEN <pred> CLEANING BY <pred>
//
// is evaluated per §6.4 with three hash tables: the group table, the
// (old/new) supergroup tables holding stateful-function states and
// superaggregates, and the supergroup->group membership table. Windows are
// delimited by changes of the ordered group-by variables; on a window
// boundary the HAVING clause decides which groups are emitted, and each new
// supergroup's SFUN states are initialized from the equivalent supergroup
// of the previous window (threshold carry-over).

#ifndef STREAMOP_CORE_SAMPLING_OPERATOR_H_
#define STREAMOP_CORE_SAMPLING_OPERATOR_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/flat_hash_table.h"
#include "common/serde.h"
#include "common/status.h"
#include "core/superagg.h"
#include "obs/exemplar.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/quality.h"
#include "obs/span.h"
#include "obs/trace_ring.h"
#include "expr/aggregate.h"
#include "expr/expr.h"
#include "expr/program.h"
#include "expr/stateful.h"
#include "stream/stream_source.h"
#include "tuple/schema.h"
#include "tuple/tuple.h"
#include "tuple/tuple_batch.h"

namespace streamop {

/// The analyzed form of a sampling query, produced by the query analyzer
/// (or hand-assembled by library users who skip SQL).
struct SamplingQueryPlan {
  SchemaPtr input_schema;

  // SELECT: expressions over (group key, aggregates, superaggregates,
  // stateful functions), plus output column names.
  std::vector<ExprPtr> select_exprs;
  std::vector<std::string> output_names;
  SchemaPtr output_schema;

  // WHERE: over (input, group key, superaggregates, stateful functions).
  ExprPtr where;

  // GROUP BY: expressions over the input tuple; `ordered` flags mark the
  // variables derived monotonically from ordered stream attributes (these
  // define the window).
  std::vector<ExprPtr> group_by_exprs;
  std::vector<std::string> group_by_names;
  std::vector<bool> group_by_ordered;

  // SUPERGROUP: subset of group-by variable slots, excluding ordered ones
  // (ordered variables are implicitly part of every supergroup).
  std::vector<int> supergroup_slots;

  ExprPtr having;         // per group at window end
  ExprPtr cleaning_when;  // per tuple, against supergroup state
  ExprPtr cleaning_by;    // per group during a cleaning phase

  std::vector<AggregateSpec> aggregates;  // group aggregates (incl. shadows)
  std::vector<SuperAggSpec> superaggs;

  // Stateful-function state slots referenced anywhere in the query.
  std::vector<const SfunStateDef*> sfun_states;

  uint64_t seed = 1;  // seeds per-supergroup SFUN RNG streams
};

/// Per-window execution statistics (the quantities behind Figs. 3 and 4).
struct WindowStats {
  std::vector<Value> window_id;  // values of the ordered group-by variables
  uint64_t tuples_in = 0;        // tuples arriving within the window
  uint64_t tuples_admitted = 0;  // tuples passing WHERE
  uint64_t groups_created = 0;
  uint64_t groups_removed = 0;   // by cleaning phases
  uint64_t peak_groups = 0;      // high-water mark of the group table
  uint64_t cleaning_phases = 0;  // CLEANING WHEN fired
  uint64_t groups_output = 0;    // groups surviving HAVING
  uint64_t tuples_output = 0;    // output rows emitted (after HAVING);
                                 // distinct from groups_output once a group
                                 // can yield multiple rows
  uint64_t late_tuples = 0;      // arrived after their window closed and
                                 // were clamped into this window
};

/// Executes one sampling query over a tuple stream.
class SamplingOperator {
 public:
  explicit SamplingOperator(std::shared_ptr<const SamplingQueryPlan> plan);
  ~SamplingOperator();

  SamplingOperator(const SamplingOperator&) = delete;
  SamplingOperator& operator=(const SamplingOperator&) = delete;

  /// Processes one input tuple; output rows of any window it closes become
  /// available via DrainOutput().
  Status Process(const Tuple& input) { return Process(input, 1.0); }

  /// Weighted variant for load shedding: the tuple was admitted upstream
  /// with probability 1/weight, so every sum/count/avg (and sum$/count$)
  /// contribution is scaled by `weight` (Horvitz–Thompson). Weight 1.0 is
  /// bit-identical to the unweighted path.
  Status Process(const Tuple& input, double weight);

  /// Batched hot path (DESIGN.md §9): processes every selected lane of
  /// `batch` in row order, equivalent tuple-for-tuple to calling Process()
  /// on each lane — including window boundaries mid-batch, late-tuple
  /// clamping, error positions, and every sampled output bit. Group-by
  /// keys, WHERE, and aggregate arguments run column-at-a-time through
  /// compiled expression programs where possible; clauses that touch
  /// per-supergroup state (ssample et al.) drop to compiled row mode on the
  /// lane, and anything uncompilable falls back to Process() per lane.
  Status ProcessBatch(const TupleBatch& batch) {
    return ProcessBatch(batch, 1.0);
  }
  Status ProcessBatch(const TupleBatch& batch, double weight) {
    return ProcessBatch(batch, weight, nullptr);
  }

  /// Span-context variant: the caller (the runtime's ring-drain loop) fills
  /// the upstream fields of `span_ctx` (shed probability, rows drained) and
  /// receives back the id and sequence number of the last window span this
  /// batch fed, so its own drain span can parent under the window root.
  /// Null span_ctx is the untraced path, bit-identical to the 2-arg form.
  Status ProcessBatch(const TupleBatch& batch, double weight,
                      obs::SpanContext* span_ctx);

  /// Closes the final window at end-of-stream.
  Status FinishStream();

  /// Removes and returns the output rows produced so far.
  std::vector<Tuple> DrainOutput();

  /// Statistics of every closed window, oldest first.
  const std::vector<WindowStats>& window_stats() const {
    return window_stats_;
  }

  /// Total tuples that arrived after their window had closed and were
  /// clamped into the then-current window (non-monotonic timestamps).
  uint64_t late_tuples() const { return late_tuples_total_; }

  const SamplingQueryPlan& plan() const { return *plan_; }

  /// Attaches registry-backed metrics (obs::OperatorMetrics::Create). The
  /// bundle is copied; the pointed-to metrics must outlive the operator
  /// (registry-owned metrics do). Default: uninstrumented, zero overhead.
  void set_metrics(const obs::OperatorMetrics& metrics) { metrics_ = metrics; }

  /// Redirects trace events (default: the process-wide obs::TraceRing).
  void set_trace_ring(obs::TraceRing* ring) { trace_ring_ = ring; }

  /// Targets per-window quality reports at `ring`, labeled with
  /// `node_name`. Default: the process-wide obs::QualityRing (reports are
  /// only built while the target ring is enabled; see obs/quality.h).
  void set_quality(obs::QualityRing* ring, std::string node_name) {
    if (ring != nullptr) quality_ring_ = ring;
    quality_node_ = std::move(node_name);
  }

  /// Redirects window-lifecycle spans (default: obs::SpanRing::Default()).
  void set_span_ring(obs::SpanRing* ring) {
    if (ring != nullptr) span_ring_ = ring;
  }

  /// Redirects phase-cycle accounting (default: obs::Profiler::Default()).
  void set_profiler(obs::Profiler* profiler) {
    if (profiler != nullptr) profiler_ = profiler;
  }

  /// Redirects telemetry exemplars (default: obs::ExemplarStore::Default()).
  void set_exemplars(obs::ExemplarStore* store) {
    if (store != nullptr) exemplars_ = store;
  }

  /// 1-based count of windows ever opened (ties spans to lifecycles).
  uint64_t window_seq() const { return window_seq_; }

  // ---- Durability (DESIGN.md §10) -------------------------------------

  /// Installs a hook invoked once per completed window flush, after the
  /// table swap and (on a mid-stream boundary) after the next window's
  /// bookkeeping is in place but before its first tuple is counted. At the
  /// call the operator's durable state is exactly the "between windows"
  /// snapshot point: SerializeDurableState() taken inside the hook and
  /// restored into a fresh operator resumes byte-identically once the
  /// already-consumed prefix of the stream is skipped. The argument is
  /// windows_flushed(). The hook must not call back into Process.
  void set_window_flush_hook(std::function<void(uint64_t)> hook) {
    window_flush_hook_ = std::move(hook);
  }

  /// Windows flushed so far. Unlike window_seq(), counted unconditionally
  /// (window_seq_ is observability-gated), so checkpoint cadence works in
  /// STREAMOP_NO_STATS builds too.
  uint64_t windows_flushed() const { return windows_flushed_; }

  /// Serializes every field that survives a restart: window position and
  /// per-window stats, the group/supergroup/membership tables (SFUN blobs
  /// via their SfunStateDef serialize hooks, length-prefixed so hook-less
  /// states round-trip as opaque skips), supergroup creation order, and
  /// every RNG-bearing counter. Byte-deterministic: hash tables are walked
  /// in creation order (or sorted by encoded key), never table order.
  void SerializeDurableState(ByteWriter& w) const;

  /// Rebuilds the operator from a SerializeDurableState() image. The
  /// operator must have been constructed with an equivalent plan (a
  /// fingerprint of plan shape is checked). On any decode failure the
  /// operator is reset to its freshly-constructed state and false is
  /// returned — a corrupt snapshot never leaves partial state behind.
  /// On success arms the replay skip: the next recovery_skip_remaining()
  /// input tuples are positionally discarded (they were fully processed
  /// before the snapshot), after which processing resumes normally.
  bool RestoreDurableState(ByteReader& r);

  /// Input tuples still to be discarded by the post-restore replay.
  uint64_t recovery_skip_remaining() const { return recovery_skip_remaining_; }
  bool recovering() const { return recovery_skip_remaining_ > 0; }

  /// Cancels the armed positional replay. Called by the runtime when it has
  /// repositioned the input *source* to the snapshot's durable offset — the
  /// prefix the replay would skip will never arrive, so skipping must be
  /// disarmed or the operator would discard live post-resume tuples.
  void ClearRecoveryReplay() { recovery_skip_remaining_ = 0; }

  /// SFUN state slots whose snapshot blob had no restore hook in this
  /// build (restarted fresh instead). Zero on a clean restore.
  uint64_t restore_states_skipped() const { return restore_states_skipped_; }

  /// Number of live groups / supergroups (introspection for tests).
  size_t num_groups() const { return groups_.size(); }
  size_t num_supergroups() const { return new_supergroups_.size(); }

 private:
  struct GroupEntry {
    std::vector<AggregateAccumulator> aggs;
  };

  struct SupergroupEntry {
    // SFUN state blobs, indexed by plan_->sfun_states slot.
    std::vector<std::unique_ptr<std::max_align_t[]>> blobs;
    std::vector<void*> states;
    std::vector<SuperAggState> superaggs;
  };

  // Flat open-addressing tables keyed by the hash-once GroupKey. Probes
  // compare the cached key hash before values; clear() keeps capacity so
  // the per-window table swap never rehashes the next window's burst.
  using GroupTable = FlatHashTable<GroupKey, GroupEntry, GroupKeyHash>;
  using SupergroupTable =
      FlatHashTable<GroupKey, SupergroupEntry, GroupKeyHash>;
  using MembershipTable =
      FlatHashTable<GroupKey, std::vector<GroupKey>, GroupKeyHash>;

  // Creates (or finds) the supergroup for `sk`, initializing SFUN states
  // from the previous window's equivalent supergroup when present.
  SupergroupEntry& GetOrCreateSupergroup(const GroupKey& sk);

  // Materializes the current superaggregate values of a supergroup into
  // `out` (cleared first); capacity is reused across calls.
  void SuperAggFinalsInto(const SupergroupEntry& sg,
                          std::vector<Value>* out) const;

  // Materializes the final values of a group's aggregates into `out`.
  void AggFinalsInto(const GroupEntry& g, std::vector<Value>* out) const;

  // Runs one cleaning phase over the groups of supergroup `sk`.
  Status RunCleaningPhase(const GroupKey& sk, SupergroupEntry& sg);

  // Removes a group: superaggregate corrections + table erasure.
  void RemoveGroup(const GroupKey& gk, SupergroupEntry& sg);

  // Window boundary: HAVING + SELECT per group, stats, table swap.
  Status FlushWindow();

  // The batched hot path behind the public ProcessBatch overloads; the
  // wrapper reports the window span id/seq back through span_ctx after the
  // body returns (covering every exit, fallback included).
  Status ProcessBatchInner(const TupleBatch& batch, double weight,
                           obs::SpanContext* span_ctx);

  // Replays batch lanes [first_lane, num_rows) through the tuple-at-a-time
  // Process(). Used whole-batch when a clause has no compiled program, and
  // as the error path when a column-wise precompute fails (precompute is
  // side-effect-free, so replaying from lane 0 reproduces the exact
  // tuple-at-a-time error position).
  Status ProcessBatchFallback(const TupleBatch& batch, size_t first_lane,
                              double weight);

  // Compiles the plan's clauses into bytecode programs (constructor).
  void CompilePrograms();

  // Builds the WindowQualityReport for the window just closed (stats
  // already pushed, tables not yet swapped — supergroup states and group
  // membership are still live) and pushes it into quality_ring_.
  void RecordWindowQuality();

  void DestroySupergroupStates(SupergroupTable& table);

  // Checkpoint helpers: one supergroup entry (superaggs + SFUN blobs) and
  // allocation of a fresh entry's state blobs for restore.
  void SerializeSupergroupEntry(const SupergroupEntry& sg,
                                ByteWriter& w) const;
  void RestoreSupergroupEntry(SupergroupEntry* sg, ByteReader& r);
  // Resets every durable field to the freshly-constructed state (used when
  // a restore fails partway so no garbage survives).
  void ResetDurableState();

  std::shared_ptr<const SamplingQueryPlan> plan_;

  GroupTable groups_;
  SupergroupTable new_supergroups_;
  SupergroupTable old_supergroups_;
  MembershipTable supergroup_groups_;

  // Supergroup keys in creation order. Output emission and window-final
  // hooks walk this list so results never depend on hash-table iteration
  // order (the flat tables' order shifts with capacity and churn).
  std::vector<GroupKey> supergroup_order_;

  // Scratch state for the allocation-free steady-state Process path: the
  // projected group / supergroup keys and the materialized superaggregate
  // finals are rebuilt in place each tuple, reusing capacity. Persistent
  // copies are made only when a new group or supergroup is created.
  GroupKey scratch_gk_;
  GroupKey scratch_sk_;
  std::vector<Value> scratch_superagg_finals_;
  std::vector<Value> scratch_agg_finals_;
  std::vector<Value> scratch_clamped_;  // late-tuple key rebuild (rare path)

  // ---- Batched execution (DESIGN.md §9) -------------------------------
  // Programs are compiled once at construction (never re-compiled on the
  // hot path; tests/hotpath_alloc_test.cc pins this down) and cached for
  // the operator's lifetime. batched_ok_ gates the columnar path: it
  // requires a compiled program for every clause the batch loop needs;
  // otherwise ProcessBatch degrades to a per-lane Process() replay.
  std::vector<std::optional<ExprProgram>> gb_progs_;  // per group-by expr
  std::optional<ExprProgram> where_prog_;
  std::optional<ExprProgram> cleaning_when_prog_;
  std::vector<std::optional<ExprProgram>> agg_arg_progs_;       // per agg
  std::vector<std::optional<ExprProgram>> superagg_arg_progs_;  // per s-agg
  bool batched_ok_ = false;
  std::vector<size_t> ordered_gb_slots_;  // group-by slots defining windows
  // Identity detection (program == one input-column load): the "result" of
  // such a program is its input column, so ProcessBatch aliases the batch
  // column instead of evaluating — the common case for srcIP/destIP keys
  // and len-style aggregate arguments costs zero copies. -1: not identity.
  std::vector<int> gb_identity_;
  std::vector<int> agg_arg_identity_;
  std::vector<int> superagg_arg_identity_;
  // Indices of superaggs with per-tuple updates (sum$/count$/first$), so
  // the lane loop skips the kind checks for group-level ones.
  std::vector<size_t> tuple_level_superaggs_;

  // Per-batch columnar scratch, capacity-stable across batches: evaluated
  // key columns, replicated per-lane key hashes (bit-equal to
  // GroupKey::Hash() by the RawValueHash fold), the precomputed WHERE
  // column, aggregate argument columns, and the admitted-lane mask.
  std::vector<VecCol> key_cols_;
  std::vector<const VecCol*> key_col_ptrs_;
  std::vector<uint64_t> lane_gk_hash_;
  std::vector<uint64_t> lane_sk_hash_;
  VecCol where_col_;
  std::vector<VecCol> agg_arg_cols_;
  std::vector<const VecCol*> agg_arg_ptrs_;  // evaluated col or batch alias
  std::vector<uint8_t> agg_arg_col_ok_;
  std::vector<VecCol> superagg_arg_cols_;
  std::vector<const VecCol*> superagg_arg_ptrs_;
  std::vector<uint8_t> superagg_arg_col_ok_;
  std::vector<uint8_t> admit_mask_;
  ExprProgram::BatchScratch batch_scratch_;
  std::vector<Value> row_stack_;  // reusable EvalRow stack (kMaxRowStack)
  Tuple batch_row_;  // materialized lane for fallback / late paths

  bool window_open_ = false;
  std::vector<Value> current_window_id_;
  uint64_t late_tuples_total_ = 0;

  WindowStats live_stats_;
  std::vector<WindowStats> window_stats_;
  std::vector<Tuple> output_;
  uint64_t supergroup_seq_ = 0;  // distinct RNG stream per supergroup

  // ---- Durability (DESIGN.md §10) -------------------------------------
  // windows_flushed_ counts completed FlushWindow calls unconditionally
  // (window_seq_ is stats-gated). The hook fires at the between-windows
  // snapshot point; recovery_skip_remaining_ arms the positional replay
  // skip after a restore — Process() discards that many tuples and
  // ProcessBatch degrades to the per-lane fallback until it drains.
  uint64_t windows_flushed_ = 0;
  uint64_t recovery_skip_remaining_ = 0;
  uint64_t restore_states_skipped_ = 0;
  std::function<void(uint64_t)> window_flush_hook_;

  // Flushes the pending_* deltas below into the registry counters.
  void FlushPendingMetrics();

  // Observability (see DESIGN.md §7). The admission histogram is sampled
  // 1-in-256 tuples so the steady-state hot path pays no clock reads, and
  // per-tuple counts accumulate in the plain pending_* fields (one
  // increment each), batched into the registry's atomics on the same
  // 1-in-256 tick and at window boundaries — an atomic RMW per tuple would
  // alone blow the <=2% overhead budget.
  obs::OperatorMetrics metrics_;
  obs::TraceRing* trace_ring_ = &obs::TraceRing::Default();
  // Per-window sample-quality reporting (obs/quality.h). live_max_weight_
  // tracks the largest Horvitz–Thompson weight of the open window — one
  // double compare per tuple; the report itself is window-boundary work
  // gated on quality_ring_->enabled().
  obs::QualityRing* quality_ring_ = &obs::QualityRing::Default();
  // Window-lifecycle spans (obs/span.h): the root span's id is allocated at
  // window open — OpenWindowSpan() — so mid-window phase spans can parent
  // under it; the root itself is emitted last, at flush. Phase-cycle
  // accounting and exemplar offers ride the existing per-batch /
  // window-boundary instrumentation points, never per-tuple ones.
  obs::SpanRing* span_ring_ = &obs::SpanRing::Default();
  obs::Profiler* profiler_ = &obs::Profiler::Default();
  obs::ExemplarStore* exemplars_ = &obs::ExemplarStore::Default();
  void OpenWindowSpan();
  uint64_t window_seq_ = 0;         // windows ever opened (1-based)
  uint64_t window_span_id_ = 0;     // root span id of the open window
  uint64_t window_open_ts_ns_ = 0;  // wall clock at window open (spans on)
  std::string quality_node_ = "operator";
  uint64_t quality_seq_ = 0;
  double live_max_weight_ = 1.0;
  uint32_t admission_sample_tick_ = 0;
  uint64_t pending_tuples_ = 0;
  uint64_t pending_admitted_ = 0;
  uint64_t pending_superagg_updates_ = 0;
  uint64_t pending_sfun_calls_ = 0;
};

/// Convenience driver: runs `op` over every tuple of `source`, finishes the
/// stream, and returns all output rows.
Result<std::vector<Tuple>> RunToCompletion(SamplingOperator& op,
                                           StreamSource& source);

}  // namespace streamop

#endif  // STREAMOP_CORE_SAMPLING_OPERATOR_H_
