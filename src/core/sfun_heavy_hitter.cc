#include "core/sfun_heavy_hitter.h"

#include <new>

#include "expr/stateful.h"
#include "tuple/value.h"

namespace streamop {

namespace {

void HeavyHitterStateInit(void* state, const void* old_state, uint64_t seed) {
  (void)old_state;  // lossy counting restarts each window
  (void)seed;
  new (state) HeavyHitterSfunState();
}

void HeavyHitterStateDestroy(void* state) {
  static_cast<HeavyHitterSfunState*>(state)->~HeavyHitterSfunState();
}

// local_count(w) -> bool: true once every w tuples, advancing the bucket.
Value LocalCount(void* state, const Value* args, size_t nargs) {
  auto* s = static_cast<HeavyHitterSfunState*>(state);
  uint64_t w = nargs > 0 ? args[0].AsUInt() : 1000;
  if (w == 0) w = 1;
  ++s->tuples_seen;
  if (s->tuples_seen % w == 0) {
    ++s->current_bucket;
    return Value::Bool(true);
  }
  return Value::Bool(false);
}

// current_bucket() -> uint: the live bucket id (starts at 1).
Value CurrentBucket(void* state, const Value* /*args*/, size_t /*nargs*/) {
  auto* s = static_cast<HeavyHitterSfunState*>(state);
  return Value::UInt(s->current_bucket);
}

}  // namespace

Status RegisterHeavyHitterSfunPackage() {
  SfunRegistry& reg = SfunRegistry::Global();
  if (reg.FindState("heavy_hitter_state") != nullptr) return Status::OK();
  SfunStateDef state;
  state.name = "heavy_hitter_state";
  state.size = sizeof(HeavyHitterSfunState);
  state.init = HeavyHitterStateInit;
  state.destroy = HeavyHitterStateDestroy;
  STREAMOP_RETURN_NOT_OK(reg.RegisterState(state));
  const SfunStateDef* sd = reg.FindState(state.name);

  STREAMOP_RETURN_NOT_OK(
      reg.RegisterFunction({"local_count", sd, 1, 1, LocalCount}));
  STREAMOP_RETURN_NOT_OK(
      reg.RegisterFunction({"current_bucket", sd, 0, 0, CurrentBucket}));
  return Status::OK();
}

}  // namespace streamop
