#include "core/sfun_heavy_hitter.h"

#include <new>

#include "expr/stateful.h"
#include "tuple/value.h"

namespace streamop {

namespace {

void HeavyHitterStateInit(void* state, const void* old_state, uint64_t seed) {
  (void)old_state;  // lossy counting restarts each window
  (void)seed;
  new (state) HeavyHitterSfunState();
}

void HeavyHitterStateDestroy(void* state) {
  static_cast<HeavyHitterSfunState*>(state)->~HeavyHitterSfunState();
}

void HeavyHitterStateSerialize(const void* state, ByteWriter* w) {
  const auto* s = static_cast<const HeavyHitterSfunState*>(state);
  w->U64(s->tuples_seen);
  w->U64(s->current_bucket);
}

void HeavyHitterStateRestore(void* state, ByteReader* r) {
  auto* s = static_cast<HeavyHitterSfunState*>(state);
  s->tuples_seen = r->U64();
  s->current_bucket = r->U64();
}

// local_count(w) -> bool: true once every w tuples, advancing the bucket.
Value LocalCount(void* state, const Value* args, size_t nargs) {
  auto* s = static_cast<HeavyHitterSfunState*>(state);
  uint64_t w = nargs > 0 ? args[0].AsUInt() : 1000;
  if (w == 0) w = 1;
  ++s->tuples_seen;
  if (s->tuples_seen % w == 0) {
    ++s->current_bucket;
    return Value::Bool(true);
  }
  return Value::Bool(false);
}

// current_bucket() -> uint: the live bucket id (starts at 1).
Value CurrentBucket(void* state, const Value* /*args*/, size_t /*nargs*/) {
  auto* s = static_cast<HeavyHitterSfunState*>(state);
  return Value::UInt(s->current_bucket);
}

// SfunStateDef::quality: lossy counting (Manku-Motwani) with bucket width
// w undercounts any frequency by at most the number of completed buckets,
// i.e. current_bucket − 1 ≈ ε·N for ε = 1/w. That deterministic bound is
// the whole error story — no variance, no CI.
bool HeavyHitterQuality(const void* state, const obs::QualityContext& ctx,
                        obs::EstimatorQuality* out) {
  const auto* s = static_cast<const HeavyHitterSfunState*>(state);
  if (s->tuples_seen == 0) return false;
  out->kind = "lossy_counting";
  out->display = "heavy_hitter_state";
  out->samples = ctx.live_groups;
  out->deterministic_bound =
      s->current_bucket > 0 ? static_cast<double>(s->current_bucket - 1) : 0.0;
  out->ci95 = out->deterministic_bound;
  out->rel_error = out->deterministic_bound /
                   static_cast<double>(s->tuples_seen);  // effective epsilon
  return true;
}

}  // namespace

Status RegisterHeavyHitterSfunPackage() {
  SfunRegistry& reg = SfunRegistry::Global();
  if (reg.FindState("heavy_hitter_state") != nullptr) return Status::OK();
  SfunStateDef state;
  state.name = "heavy_hitter_state";
  state.size = sizeof(HeavyHitterSfunState);
  state.init = HeavyHitterStateInit;
  state.destroy = HeavyHitterStateDestroy;
  state.quality = HeavyHitterQuality;
  state.serialize = HeavyHitterStateSerialize;
  state.restore = HeavyHitterStateRestore;
  STREAMOP_RETURN_NOT_OK(reg.RegisterState(state));
  const SfunStateDef* sd = reg.FindState(state.name);

  STREAMOP_RETURN_NOT_OK(
      reg.RegisterFunction({"local_count", sd, 1, 1, LocalCount}));
  STREAMOP_RETURN_NOT_OK(
      reg.RegisterFunction({"current_bucket", sd, 0, 0, CurrentBucket}));
  return Status::OK();
}

}  // namespace streamop
