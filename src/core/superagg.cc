#include "core/superagg.h"

#include "common/string_util.h"

namespace streamop {

bool LookupSuperAggKind(const std::string& name, SuperAggKind* kind) {
  if (EqualsIgnoreCase(name, "count_distinct")) {
    *kind = SuperAggKind::kCountDistinct;
    return true;
  }
  if (EqualsIgnoreCase(name, "kth_smallest_value") ||
      EqualsIgnoreCase(name, "kth_smallest")) {
    *kind = SuperAggKind::kKthSmallest;
    return true;
  }
  if (EqualsIgnoreCase(name, "kth_largest_value") ||
      EqualsIgnoreCase(name, "kth_largest")) {
    *kind = SuperAggKind::kKthLargest;
    return true;
  }
  if (EqualsIgnoreCase(name, "sum")) {
    *kind = SuperAggKind::kSum;
    return true;
  }
  if (EqualsIgnoreCase(name, "count")) {
    *kind = SuperAggKind::kCount;
    return true;
  }
  if (EqualsIgnoreCase(name, "first")) {
    *kind = SuperAggKind::kFirst;
    return true;
  }
  return false;
}

void SuperAggState::OnTuple(const Value& v, double weight) {
  if (weight != 1.0) weighted_ = true;
  switch (spec_->kind) {
    case SuperAggKind::kSum:
      acc_.Update(v, weight);
      // HT variance estimator term w(w−1)x² = x²(1−p)/p² — zero for
      // unshed tuples, so the unweighted hot path pays one branch.
      if (weight != 1.0) {
        const double x = v.AsDouble();
        ht_var_ += weight * (weight - 1.0) * x * x;
      }
      break;
    case SuperAggKind::kCount:
      ++tuple_count_;
      weighted_count_ += weight;
      if (weight != 1.0) ht_var_ += weight * (weight - 1.0);
      break;
    case SuperAggKind::kFirst:
      if (!has_first_) {
        first_ = v;
        has_first_ = true;
      }
      break;
    default:
      break;
  }
}

void SuperAggState::OnGroupCreated(const GroupKey& key) {
  switch (spec_->kind) {
    case SuperAggKind::kCountDistinct:
      ++group_count_;
      break;
    case SuperAggKind::kKthSmallest:
    case SuperAggKind::kKthLargest:
      if (spec_->group_by_slot >= 0 &&
          static_cast<size_t>(spec_->group_by_slot) < key.size()) {
        values_.emplace(key.at(static_cast<size_t>(spec_->group_by_slot)), 0);
      }
      break;
    default:
      break;
  }
}

void SuperAggState::OnGroupRemoved(const GroupKey& key,
                                   const Value& shadow_value) {
  switch (spec_->kind) {
    case SuperAggKind::kCountDistinct:
      if (group_count_ > 0) --group_count_;
      break;
    case SuperAggKind::kKthSmallest:
    case SuperAggKind::kKthLargest: {
      if (spec_->group_by_slot >= 0 &&
          static_cast<size_t>(spec_->group_by_slot) < key.size()) {
        auto it =
            values_.find(key.at(static_cast<size_t>(spec_->group_by_slot)));
        if (it != values_.end()) values_.erase(it);
      }
      break;
    }
    case SuperAggKind::kSum:
      if (!shadow_value.is_null()) {
        acc_.Subtract(shadow_value);  // sum is subtractable
      }
      break;
    case SuperAggKind::kCount:
      if (!shadow_value.is_null()) {
        uint64_t c = shadow_value.AsUInt();
        tuple_count_ = tuple_count_ >= c ? tuple_count_ - c : 0;
        // The shadow count aggregate carries the same weights, so its final
        // value is the weighted contribution of the removed group.
        double wc = shadow_value.AsDouble();
        weighted_count_ = weighted_count_ >= wc ? weighted_count_ - wc : 0.0;
      }
      break;
    case SuperAggKind::kFirst:
      break;  // first$ is insensitive to removal
  }
}

Value SuperAggState::Final() const {
  switch (spec_->kind) {
    case SuperAggKind::kCountDistinct:
      return Value::UInt(group_count_);
    case SuperAggKind::kKthSmallest: {
      if (values_.size() < spec_->k || spec_->k == 0) {
        return Value::UInt(UINT64_MAX);
      }
      auto it = values_.begin();
      std::advance(it, static_cast<long>(spec_->k - 1));
      return it->first;
    }
    case SuperAggKind::kKthLargest: {
      if (values_.size() < spec_->k || spec_->k == 0) {
        return Value::UInt(0);
      }
      auto it = values_.rbegin();
      std::advance(it, static_cast<long>(spec_->k - 1));
      return it->first;
    }
    case SuperAggKind::kSum:
      return acc_.Final();
    case SuperAggKind::kCount:
      if (weighted_) return Value::Double(weighted_count_);
      return Value::UInt(tuple_count_);
    case SuperAggKind::kFirst:
      return has_first_ ? first_ : Value::Null();
  }
  return Value::Null();
}

void SuperAggState::SerializeTo(ByteWriter& w) const {
  w.U64(group_count_);
  acc_.SerializeTo(w);
  w.U64(tuple_count_);
  w.F64(weighted_count_);
  w.F64(ht_var_);
  w.Bool(weighted_);
  first_.SerializeTo(w);
  w.Bool(has_first_);
  // kKthSmallest multiset: the keys in order (the mapped char is unused).
  w.U64(values_.size());
  for (const auto& [v, unused] : values_) v.SerializeTo(w);
}

void SuperAggState::RestoreFrom(ByteReader& r) {
  group_count_ = r.U64();
  acc_.RestoreFrom(r);
  tuple_count_ = r.U64();
  weighted_count_ = r.F64();
  ht_var_ = r.F64();
  weighted_ = r.Bool();
  first_ = Value::Deserialize(r);
  has_first_ = r.Bool();
  values_.clear();
  uint64_t n = r.U64();
  if (!r.CheckCount(n, 1)) return;
  for (uint64_t i = 0; i < n; ++i) values_.emplace(Value::Deserialize(r), 0);
}

}  // namespace streamop
