// The distinct sampling stateful-function package (Gibbons' algorithm
// expressed through the sampling operator — a fifth algorithm beyond the
// paper's four, demonstrating the operator's extensibility claim):
//
//   STATE distinct_sampling_state;
//   SFUN dssample(hash [, capacity])   -- WHERE: admit iff the hash has at
//                                         least `level` trailing zeros
//   SFUN dsdo_clean(count_distinct$)   -- CLEANING WHEN: sample > capacity;
//                                         raises the level
//   SFUN dsclean_with(hash)            -- CLEANING BY: keep iff the group's
//                                         hash survives the new level
//   SFUN dsfactor()                    -- SELECT: the scale factor 2^level
//   SFUN dslevel()                     -- SELECT: the current level
//
// Query shape (distinct source addresses per minute, with counts):
//
//   SELECT tb, srcIP, count(*), count_distinct$(*) * dsfactor()
//   FROM PKT
//   WHERE dssample(H(srcIP), 256) = TRUE
//   GROUP BY time/60 as tb, srcIP
//   CLEANING WHEN dsdo_clean(count_distinct$(*)) = TRUE
//   CLEANING BY dsclean_with(H(srcIP)) = TRUE

#ifndef STREAMOP_CORE_SFUN_DISTINCT_H_
#define STREAMOP_CORE_SFUN_DISTINCT_H_

#include <cstdint>

#include "common/status.h"

namespace streamop {

struct DistinctSfunState {
  uint64_t capacity = 0;  // latched by the first dssample call
  uint32_t level = 0;
  uint32_t pending_level = 0;  // armed by dsdo_clean for the cleaning pass
};

Status RegisterDistinctSfunPackage();

}  // namespace streamop

#endif  // STREAMOP_CORE_SFUN_DISTINCT_H_
