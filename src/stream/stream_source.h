// Stream sources: pull-based producers of tuples (and, on the fast path,
// raw PacketRecords) consumed by query nodes.

#ifndef STREAMOP_STREAM_STREAM_SOURCE_H_
#define STREAMOP_STREAM_STREAM_SOURCE_H_

#include <memory>
#include <vector>

#include "net/packet.h"
#include "net/trace_generator.h"
#include "obs/metrics.h"
#include "tuple/schema.h"
#include "tuple/tuple.h"
#include "tuple/tuple_batch.h"

namespace streamop {

/// Pull-based tuple source. Next() returns false at end-of-stream.
class StreamSource {
 public:
  virtual ~StreamSource() = default;

  virtual SchemaPtr schema() const = 0;

  /// Produces the next tuple. Returns false when the stream is exhausted.
  virtual bool Next(Tuple* out) = 0;

  /// Batched pull (DESIGN.md §9): clears `batch` and fills it up to its
  /// capacity. Returns the number of rows appended; 0 at end-of-stream.
  /// The default adapts Next(); packet-backed sources override it to
  /// append columnar lanes without building intermediate Tuples.
  virtual size_t NextBatch(TupleBatch* batch) {
    batch->Clear();
    Tuple t;
    size_t appended = 0;
    while (!batch->full() && Next(&t)) {
      batch->AppendTuple(t);
      ++appended;
    }
    return appended;
  }

  /// Rewinds to the beginning if the source is replayable (traces are).
  virtual void Reset() {}

  /// Attaches production metrics (obs::SourceMetrics::Create); the bundle's
  /// metrics must outlive the source. Subclasses report via CountTuple().
  void AttachMetrics(const obs::SourceMetrics& metrics) { metrics_ = metrics; }

 protected:
  void CountTuple() {
    if (metrics_.enabled()) metrics_.tuples->Add();
  }

 private:
  obs::SourceMetrics metrics_;
};

/// Converts a PacketRecord into a tuple matching MakePacketSchema():
/// (time, ts_ns, srcIP, destIP, srcPort, destPort, proto, len).
Tuple PacketToTuple(const PacketRecord& p);

/// Replays an in-memory Trace as tuples. The trace is borrowed, not copied;
/// it must outlive the source (the arena-replay data path of Gigascope).
class TraceTupleSource : public StreamSource {
 public:
  explicit TraceTupleSource(const Trace* trace)
      : trace_(trace), schema_(MakePacketSchema()) {}

  SchemaPtr schema() const override { return schema_; }

  bool Next(Tuple* out) override {
    if (pos_ >= trace_->size()) return false;
    *out = PacketToTuple(trace_->at(pos_++));
    CountTuple();
    return true;
  }

  /// Columnar fast path: packets append straight into the batch's eight
  /// uint columns, no per-tuple Value construction.
  size_t NextBatch(TupleBatch* batch) override {
    batch->Clear();
    size_t appended = 0;
    while (!batch->full() && pos_ < trace_->size()) {
      batch->AppendPacket(trace_->at(pos_++));
      CountTuple();
      ++appended;
    }
    return appended;
  }

  void Reset() override { pos_ = 0; }

 private:
  const Trace* trace_;
  SchemaPtr schema_;
  size_t pos_ = 0;
};

/// Yields a fixed vector of tuples; used heavily in unit tests.
class VectorTupleSource : public StreamSource {
 public:
  VectorTupleSource(SchemaPtr schema, std::vector<Tuple> tuples)
      : schema_(std::move(schema)), tuples_(std::move(tuples)) {}

  SchemaPtr schema() const override { return schema_; }

  bool Next(Tuple* out) override {
    if (pos_ >= tuples_.size()) return false;
    *out = tuples_[pos_++];
    CountTuple();
    return true;
  }

  void Reset() override { pos_ = 0; }

 private:
  SchemaPtr schema_;
  std::vector<Tuple> tuples_;
  size_t pos_ = 0;
};

}  // namespace streamop

#endif  // STREAMOP_STREAM_STREAM_SOURCE_H_
