// SocketSource: a resumable network ingest source speaking the frame
// protocol of net/wire.h over a UDP datagram port or a length-framed TCP
// connection (DESIGN.md §11).
//
// Everything is nonblocking and poll()-driven from a single thread — the
// same discipline as obs/http_server. One Read() blocks at most
// read_timeout_ms; quiet periods surface as kIdle so the runtime can emit
// heartbeat-empty batches and windows keep closing on wall-clock time
// even when the wire is silent.
//
// Connection lifecycle. TCP: connect to the producer, send HELLO with our
// durable record offset, expect ACK, then stream. Any failure — refused
// connect, mid-stream EOF, a corrupt frame (TCP can only re-sync at
// connection granularity) — moves to a backoff state and retries with
// exponential backoff plus jitter, bounded by max_reconnect_attempts
// consecutive failures before the source ends with an error. UDP: bind
// the port, wait for any producer datagram to learn the peer address,
// then HELLO/ACK the same way; a stalled producer is nudged with a fresh
// HELLO on the same bounded-backoff budget.
//
// Delivery semantics. Sequence numbers count records; each DATA frame
// carries its first record's seq. Frames are reconciled against the next
// expected seq: behind = duplicates dropped, ahead = a gap booked in
// stats (lost datagrams, or an ACK past the requested resume offset), so
// delivery is at-most-once with loss always accounted, never silent.
// Frames that fail magic/CRC/framing checks are quarantined into
// malformed_frames. The durable offset reported for checkpoints covers
// only records already handed to the caller — frames buffered internally
// are re-requested by the post-restart HELLO.

#ifndef STREAMOP_STREAM_SOCKET_SOURCE_H_
#define STREAMOP_STREAM_SOCKET_SOURCE_H_

#include <netinet/in.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "net/wire.h"
#include "stream/resumable_source.h"

namespace streamop {

struct SocketSourceConfig {
  enum class Mode { kUdp, kTcp };
  Mode mode = Mode::kUdp;
  /// TCP: producer address to connect to. Ignored for UDP (we bind).
  std::string host = "127.0.0.1";
  /// UDP: local port to bind; TCP: producer port.
  uint16_t port = 0;
  /// Max time one Read() blocks before returning kIdle.
  int read_timeout_ms = 100;
  /// Consecutive failed reconnects / unanswered HELLOs before the source
  /// gives up (kEnd with an error). Any successful handshake resets it.
  int max_reconnect_attempts = 8;
  /// Exponential backoff bounds between reconnect attempts. The actual
  /// delay is initial * 2^attempt, capped at max, scaled by a random
  /// factor in [0.5, 1.0) so restarting consumers don't thundering-herd.
  int backoff_initial_ms = 20;
  int backoff_max_ms = 2000;
  uint64_t backoff_seed = 0x5eedu;
  /// Resend HELLO when an expected ACK hasn't arrived within this long.
  int hello_retry_ms = 200;
  /// UDP: mid-stream silence longer than this triggers a re-HELLO nudge
  /// (the producer may have missed our handshake or stalled).
  int stall_rehello_ms = 1000;
};

class SocketSource : public ResumableSource {
 public:
  explicit SocketSource(SocketSourceConfig config);
  ~SocketSource() override;

  SocketSource(const SocketSource&) = delete;
  SocketSource& operator=(const SocketSource&) = delete;

  const char* kind() const override {
    return config_.mode == SocketSourceConfig::Mode::kUdp ? "udp" : "tcp";
  }
  uint64_t stream_id() const override { return SourceStreamId(describe()); }
  std::string describe() const override;
  Status Open() override;
  ReadResult Read(PacketRecord* buf, size_t max, size_t* n_out) override;
  /// The next record seq the caller hasn't seen: the head of the pending
  /// buffer, or the receive frontier once it's drained. Using the pending
  /// head's own seq (not frontier minus count) keeps the offset honest
  /// when a gap has been booked past records still waiting in pending.
  uint64_t durable_offset() const override {
    return pending_pos_ < pending_.size() ? pending_[pending_pos_].first
                                          : next_seq_;
  }
  Status SeekTo(uint64_t offset) override;
  uint64_t offset_lag() const override {
    const uint64_t durable = durable_offset();
    return producer_head_ > durable ? producer_head_ - durable : 0;
  }
  const SourceIngestStats& stats() const override { return stats_; }
  Status last_status() const override { return last_status_; }
  void InjectDisconnect() override;

  /// Producer's announced head sequence (from HEARTBEAT/FIN), for tests.
  uint64_t producer_head() const { return producer_head_; }

  /// UDP: the locally bound port (differs from config when binding port
  /// 0). Note an ephemeral port makes stream_id() unstable across
  /// restarts — checkpointable runs should configure a fixed port.
  uint16_t bound_port() const { return config_.port; }

 private:
  enum class State {
    kClosed,     // before Open()
    kAwaitPeer,  // UDP: bound, waiting for any producer datagram
    kAwaitAck,   // HELLO sent, waiting for the producer's ACK
    kBackoff,    // TCP: between reconnect attempts
    kStreaming,  // handshake done, consuming DATA frames
    kEnded,      // FIN fully drained, or the reconnect budget ran out
  };

  // One bounded step of the state machine: waits at most `timeout_ms` for
  // socket readiness and processes whatever arrived.
  void Pump(int timeout_ms);
  void PumpUdp(int timeout_ms);
  void PumpTcp(int timeout_ms);
  bool TryConnectTcp(int timeout_ms);
  void BeginReconnect(const char* why);
  void SendHelloUdp();
  void HandleFrame(const FrameHeader& h, const uint8_t* payload);
  void ProcessData(const FrameHeader& h, const uint8_t* payload);
  // Parses complete frames out of rdbuf_; false = stream desync, reconnect.
  bool ParseStreamBuffer();
  void MaybeFinish();
  void Fail(const std::string& why);
  size_t TakePending(PacketRecord* buf, size_t max);
  int64_t BackoffDelayMs();

  SocketSourceConfig config_;
  State state_ = State::kClosed;
  int fd_ = -1;
  sockaddr_in peer_addr_{};
  bool peer_known_ = false;  // UDP: learned the producer's address
  sockaddr_in connect_addr_{};

  uint64_t next_seq_ = 0;       // next record seq we expect to receive
  uint64_t producer_head_ = 0;  // producer's announced head
  bool fin_seen_ = false;
  uint64_t fin_head_ = 0;

  // (seq, record) received but not yet handed to the caller (a frame can
  // carry more than one Read() asked for). Seqs are non-decreasing but may
  // jump across booked gaps.
  std::vector<std::pair<uint64_t, PacketRecord>> pending_;
  size_t pending_pos_ = 0;

  std::vector<uint8_t> rdbuf_;  // TCP: unparsed stream bytes
  size_t rdpos_ = 0;
  std::vector<uint8_t> dgram_buf_;  // UDP: one-datagram scratch

  int attempts_ = 0;          // consecutive failures in the current outage
  int64_t next_attempt_ms_ = 0;
  int64_t hello_sent_ms_ = 0;
  int64_t last_rx_ms_ = 0;

  Pcg64 jitter_;
  SourceIngestStats stats_;
  Status last_status_ = Status::OK();
};

}  // namespace streamop

#endif  // STREAMOP_STREAM_SOCKET_SOURCE_H_
