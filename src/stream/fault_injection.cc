#include "stream/fault_injection.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace streamop {

Trace InjectFaults(const Trace& trace, const FaultInjectionConfig& config) {
  Pcg64 rng(config.seed, 0xfa017ULL);
  std::vector<PacketRecord> out;
  out.reserve(trace.size() + trace.size() / 8);

  // Pass 1: per-packet faults in arrival order. Burst compression rewrites
  // timestamps relative to the burst start so gaps shrink by the
  // compression factor while order within the burst is preserved.
  size_t burst_left = 0;
  uint64_t burst_anchor_ns = 0;  // timestamp the burst compresses toward
  uint64_t prev_original_ns = 0;
  for (size_t i = 0; i < trace.size(); ++i) {
    PacketRecord p = trace.at(i);
    const uint64_t original_ns = p.ts_ns;

    if (burst_left == 0 && config.p_burst_start > 0.0 &&
        rng.NextBernoulli(config.p_burst_start)) {
      burst_left = config.burst_packets;
      burst_anchor_ns = p.ts_ns;
    }
    if (burst_left > 0) {
      const double comp = std::max(config.burst_compression, 1.0);
      const uint64_t gap = original_ns - std::min(original_ns, burst_anchor_ns);
      p.ts_ns = burst_anchor_ns + static_cast<uint64_t>(
                                      static_cast<double>(gap) / comp);
      --burst_left;
    }

    if (config.p_ts_backwards > 0.0 &&
        rng.NextBernoulli(config.p_ts_backwards)) {
      const uint64_t max_back = static_cast<uint64_t>(
          config.ts_backwards_max_sec * 1e9);
      const uint64_t back = rng.NextBounded(max_back + 1);
      p.ts_ns = p.ts_ns >= back ? p.ts_ns - back : 0;
    }

    if (config.p_truncate > 0.0 && rng.NextBernoulli(config.p_truncate)) {
      p.len = static_cast<uint16_t>(rng.NextBounded(20));  // below IP header
    }

    if (config.p_corrupt > 0.0 && rng.NextBernoulli(config.p_corrupt)) {
      p.src_ip = rng.Next32();
      p.dst_ip = rng.Next32();
      p.src_port = static_cast<uint16_t>(rng.Next32());
      p.dst_port = static_cast<uint16_t>(rng.Next32());
      p.proto = static_cast<uint8_t>(rng.Next32());
      p.len = static_cast<uint16_t>(rng.NextBounded(65536));
    }

    out.push_back(p);
    if (config.p_duplicate > 0.0 && rng.NextBernoulli(config.p_duplicate)) {
      out.push_back(p);
    }
    prev_original_ns = original_ns;
  }
  (void)prev_original_ns;

  // Pass 2: positional reordering — swap a packet forward by a bounded
  // offset, which puts its (earlier) timestamp after later ones.
  if (config.p_reorder > 0.0 && config.reorder_window > 0) {
    for (size_t i = 0; i < out.size(); ++i) {
      if (!rng.NextBernoulli(config.p_reorder)) continue;
      const size_t span = std::min(config.reorder_window, out.size() - 1 - i);
      if (span == 0) continue;
      const size_t j = i + 1 + rng.NextBounded(span);
      std::swap(out[i], out[j]);
    }
  }

  return Trace(std::move(out));
}

std::function<void(uint64_t, const std::atomic<bool>&)> MakeConsumerStallHook(
    const ConsumerStallSpec& spec) {
  return [spec](uint64_t batch_index, const std::atomic<bool>& abort) {
    uint64_t ms = 0;
    if (batch_index == spec.stall_at_batch) {
      ms = spec.stall_ms;
    } else if (batch_index > spec.stall_at_batch) {
      ms = spec.per_batch_ms;
    }
    if (ms == 0) return;
    const bool forever = ms == UINT64_MAX;
    uint64_t slept = 0;
    // Sleep in 1 ms slices so an abort (watchdog or producer error) always
    // unsticks the "hung" consumer promptly.
    while ((forever || slept < ms) &&
           !abort.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ++slept;
    }
  };
}

}  // namespace streamop
