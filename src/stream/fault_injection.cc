#include "stream/fault_injection.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "common/serde.h"

namespace streamop {

Trace InjectFaults(const Trace& trace, const FaultInjectionConfig& config) {
  Pcg64 rng(config.seed, 0xfa017ULL);
  std::vector<PacketRecord> out;
  out.reserve(trace.size() + trace.size() / 8);

  // Pass 1: per-packet faults in arrival order. Burst compression rewrites
  // timestamps relative to the burst start so gaps shrink by the
  // compression factor while order within the burst is preserved.
  size_t burst_left = 0;
  uint64_t burst_anchor_ns = 0;  // timestamp the burst compresses toward
  uint64_t prev_original_ns = 0;
  for (size_t i = 0; i < trace.size(); ++i) {
    PacketRecord p = trace.at(i);
    const uint64_t original_ns = p.ts_ns;

    if (burst_left == 0 && config.p_burst_start > 0.0 &&
        rng.NextBernoulli(config.p_burst_start)) {
      burst_left = config.burst_packets;
      burst_anchor_ns = p.ts_ns;
    }
    if (burst_left > 0) {
      const double comp = std::max(config.burst_compression, 1.0);
      const uint64_t gap = original_ns - std::min(original_ns, burst_anchor_ns);
      p.ts_ns = burst_anchor_ns + static_cast<uint64_t>(
                                      static_cast<double>(gap) / comp);
      --burst_left;
    }

    if (config.p_ts_backwards > 0.0 &&
        rng.NextBernoulli(config.p_ts_backwards)) {
      const uint64_t max_back = static_cast<uint64_t>(
          config.ts_backwards_max_sec * 1e9);
      const uint64_t back = rng.NextBounded(max_back + 1);
      p.ts_ns = p.ts_ns >= back ? p.ts_ns - back : 0;
    }

    if (config.p_truncate > 0.0 && rng.NextBernoulli(config.p_truncate)) {
      p.len = static_cast<uint16_t>(rng.NextBounded(20));  // below IP header
    }

    if (config.p_corrupt > 0.0 && rng.NextBernoulli(config.p_corrupt)) {
      p.src_ip = rng.Next32();
      p.dst_ip = rng.Next32();
      p.src_port = static_cast<uint16_t>(rng.Next32());
      p.dst_port = static_cast<uint16_t>(rng.Next32());
      p.proto = static_cast<uint8_t>(rng.Next32());
      p.len = static_cast<uint16_t>(rng.NextBounded(65536));
    }

    out.push_back(p);
    if (config.p_duplicate > 0.0 && rng.NextBernoulli(config.p_duplicate)) {
      out.push_back(p);
    }
    prev_original_ns = original_ns;
  }
  (void)prev_original_ns;

  // Pass 2: positional reordering — swap a packet forward by a bounded
  // offset, which puts its (earlier) timestamp after later ones.
  if (config.p_reorder > 0.0 && config.reorder_window > 0) {
    for (size_t i = 0; i < out.size(); ++i) {
      if (!rng.NextBernoulli(config.p_reorder)) continue;
      const size_t span = std::min(config.reorder_window, out.size() - 1 - i);
      if (span == 0) continue;
      const size_t j = i + 1 + rng.NextBounded(span);
      std::swap(out[i], out[j]);
    }
  }

  return Trace(std::move(out));
}

std::function<void(uint64_t, const std::atomic<bool>&)> MakeConsumerStallHook(
    const ConsumerStallSpec& spec) {
  return [spec](uint64_t batch_index, const std::atomic<bool>& abort) {
    uint64_t ms = 0;
    if (batch_index == spec.stall_at_batch) {
      ms = spec.stall_ms;
    } else if (batch_index > spec.stall_at_batch) {
      ms = spec.per_batch_ms;
    }
    if (ms == 0) return;
    const bool forever = ms == UINT64_MAX;
    uint64_t slept = 0;
    // Sleep in 1 ms slices so an abort (watchdog or producer error) always
    // unsticks the "hung" consumer promptly.
    while ((forever || slept < ms) &&
           !abort.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ++slept;
    }
  };
}

bool InjectCheckpointFault(const std::string& path, CheckpointFault fault,
                           uint64_t seed) {
  std::string bytes;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return false;
    char buf[1 << 14];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
    std::fclose(f);
  }

  Pcg64 rng(seed, 0xc8e5ULL);
  switch (fault) {
    case CheckpointFault::kTruncate: {
      if (bytes.empty()) return false;
      bytes.resize(rng.NextBounded(bytes.size()));
      break;
    }
    case CheckpointFault::kBitFlip: {
      if (bytes.empty()) return false;
      const size_t bit = rng.NextBounded(bytes.size() * 8);
      bytes[bit / 8] = static_cast<char>(
          static_cast<unsigned char>(bytes[bit / 8]) ^ (1u << (bit % 8)));
      break;
    }
    case CheckpointFault::kStaleVersion: {
      // Snapshot header layout (engine/checkpoint.cc): magic u32, version
      // u32 at offset 4, ..., header CRC-32C over the first 28 bytes at
      // offset 28. Bump the version and refresh the header CRC so both
      // CRCs verify and only the version check can reject the file.
      if (bytes.size() < 32) return false;
      const auto load_le = [&bytes](size_t off) {
        uint32_t v = 0;
        for (int i = 3; i >= 0; --i) {
          v = (v << 8) | static_cast<unsigned char>(bytes[off + i]);
        }
        return v;
      };
      const auto store_le = [&bytes](size_t off, uint32_t v) {
        for (int i = 0; i < 4; ++i) {
          bytes[off + i] = static_cast<char>(v >> (8 * i));
        }
      };
      const uint32_t version =
          load_le(4) + 1 + static_cast<uint32_t>(rng.NextBounded(1000));
      store_le(4, version);
      store_le(28, Crc32c(bytes.data(), 28));
      break;
    }
  }

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace streamop
