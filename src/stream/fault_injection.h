// Deterministic fault injection for chaos-testing the pipeline: given a
// clean trace and a seed, produce a faulty trace (duplicates, reordering,
// timestamp regressions, truncated/corrupted packets, compressed bursts)
// that is bit-identical across runs — so every chaos test failure is
// replayable from its seed.
//
// Consumer-side faults (a high-level node that stalls or hangs) are
// modelled by a cooperative stall hook installed into RuntimeOptions; the
// hook sleeps in small increments while watching the runtime's abort flag,
// so the watchdog can always unstick the run.

#ifndef STREAMOP_STREAM_FAULT_INJECTION_H_
#define STREAMOP_STREAM_FAULT_INJECTION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "common/random.h"
#include "net/trace_generator.h"
#include "stream/resumable_source.h"
#include "stream/stream_source.h"

namespace streamop {

struct FaultInjectionConfig {
  uint64_t seed = 1;

  /// Per-packet probability of emitting a duplicate right after the packet.
  double p_duplicate = 0.0;

  /// Per-packet probability of swapping the packet forward by up to
  /// `reorder_window` positions (creates out-of-order timestamps).
  double p_reorder = 0.0;
  size_t reorder_window = 8;

  /// Per-packet probability of truncating `len` below the 20-byte minimum
  /// IP header (a malformed packet the consumer must reject, not crash on).
  double p_truncate = 0.0;

  /// Per-packet probability of corrupting header fields with random bytes.
  double p_corrupt = 0.0;

  /// Per-packet probability of a timestamp regression: ts_ns jumps
  /// backwards by up to `ts_backwards_max_sec` (late tuples downstream).
  double p_ts_backwards = 0.0;
  double ts_backwards_max_sec = 2.0;

  /// Per-packet probability of *starting* a burst: the next
  /// `burst_packets` packets have their inter-arrival gaps compressed by
  /// `burst_compression` (timestamps squeezed together → overload).
  double p_burst_start = 0.0;
  size_t burst_packets = 2048;
  double burst_compression = 50.0;
};

/// Applies the configured faults to a copy of `trace`. Deterministic: the
/// same (trace, config) pair always yields the same faulty trace.
Trace InjectFaults(const Trace& trace, const FaultInjectionConfig& config);

/// StreamSource wrapper applying the same fault model on the fly to the
/// tuple pull path (single-threaded Run / RunQueryOverTrace). Owns a faulty
/// copy of the trace so replays (Reset) are deterministic too.
class FaultyStreamSource : public StreamSource {
 public:
  FaultyStreamSource(const Trace* trace, const FaultInjectionConfig& config)
      : faulty_(InjectFaults(*trace, config)), inner_(&faulty_) {}

  SchemaPtr schema() const override { return inner_.schema(); }
  bool Next(Tuple* out) override {
    if (!inner_.Next(out)) return false;
    CountTuple();
    return true;
  }
  void Reset() override { inner_.Reset(); }

  const Trace& faulty_trace() const { return faulty_; }

 private:
  Trace faulty_;
  TraceTupleSource inner_;
};

/// Consumer-stall fault: what a hook built by MakeConsumerStallHook does.
struct ConsumerStallSpec {
  /// Batch index at which the stall begins.
  uint64_t stall_at_batch = 0;
  /// How long the consumer stalls, in milliseconds. A value of UINT64_MAX
  /// means "hang forever" — the hook then sleeps until the runtime's abort
  /// flag is raised (only the watchdog can end the run).
  uint64_t stall_ms = 0;
  /// If > 0, also stall this many milliseconds on *every* batch from
  /// `stall_at_batch` on (a persistently slow consumer rather than a
  /// one-shot hiccup).
  uint64_t per_batch_ms = 0;
};

/// Builds a cooperative stall hook for RuntimeOptions::consumer_stall_hook.
/// The hook sleeps in 1 ms slices and re-checks `abort` between slices, so
/// a watchdog-initiated abort always terminates it promptly.
std::function<void(uint64_t, const std::atomic<bool>&)> MakeConsumerStallHook(
    const ConsumerStallSpec& spec);

/// Ingest-side faults for a ResumableSource. The wrapper injects what the
/// *consumer host* can plausibly suffer: surprise disconnects (driving the
/// reconnect/backoff + HELLO-resume machinery) and local stalls (driving
/// producer-side timeouts and the offset-lag gauge). Producer-side faults —
/// dropped frames, corrupt payloads, seq gaps, torn final frames — are
/// injected at the other end of the wire by TraceSenderConfig's fault
/// knobs (net/trace_sender.h), where they occur in reality.
struct ResumableFaultConfig {
  /// Drop the connection after every N delivered records (0 = off).
  uint64_t disconnect_every_records = 0;
  /// Stall for stall_ms before every Nth Read() call (0 = off).
  uint64_t stall_every_reads = 0;
  uint64_t stall_ms = 0;
};

/// ResumableSource wrapper applying ResumableFaultConfig. Offsets, stats
/// and status pass straight through to the inner source — the wrapper adds
/// adversity, not semantics, so recovery proofs hold with it in place.
class FaultyResumableSource : public ResumableSource {
 public:
  FaultyResumableSource(ResumableSource* inner,
                        const ResumableFaultConfig& config)
      : inner_(inner), config_(config) {}

  const char* kind() const override { return inner_->kind(); }
  uint64_t stream_id() const override { return inner_->stream_id(); }
  std::string describe() const override { return inner_->describe(); }
  Status Open() override { return inner_->Open(); }
  uint64_t durable_offset() const override { return inner_->durable_offset(); }
  Status SeekTo(uint64_t offset) override { return inner_->SeekTo(offset); }
  uint64_t offset_lag() const override { return inner_->offset_lag(); }
  const SourceIngestStats& stats() const override { return inner_->stats(); }
  Status last_status() const override { return inner_->last_status(); }
  void InjectDisconnect() override { inner_->InjectDisconnect(); }

  ReadResult Read(PacketRecord* buf, size_t max, size_t* n_out) override {
    if (config_.stall_every_reads > 0 &&
        ++reads_ % config_.stall_every_reads == 0 && config_.stall_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(config_.stall_ms));
    }
    const ReadResult r = inner_->Read(buf, max, n_out);
    if (config_.disconnect_every_records > 0) {
      records_since_disconnect_ += *n_out;
      if (records_since_disconnect_ >= config_.disconnect_every_records) {
        records_since_disconnect_ = 0;
        inner_->InjectDisconnect();
      }
    }
    return r;
  }

 private:
  ResumableSource* inner_;
  ResumableFaultConfig config_;
  uint64_t reads_ = 0;
  uint64_t records_since_disconnect_ = 0;
};

/// Checkpoint-file faults (engine/checkpoint.h): deterministic in-place
/// corruption of an on-disk snapshot, for testing that recovery detects
/// torn, bit-flipped and stale snapshots instead of restoring garbage.
enum class CheckpointFault {
  /// Cut the file at a seeded byte offset — a torn write. An offset inside
  /// the 32-byte header must read as "truncated header"; one inside the
  /// payload as "truncated payload".
  kTruncate,
  /// Flip one seeded bit anywhere in the file — silent media corruption.
  /// Must surface as a header or payload CRC mismatch.
  kBitFlip,
  /// Bump the header's version field and refresh the header CRC so the
  /// snapshot reads as well-formed but written by an unknown format
  /// revision. Must be skipped as "version mismatch", not torn — both
  /// CRCs stay valid.
  kStaleVersion,
};

/// Applies `fault` to the file at `path` in place; deterministic for a
/// given (file contents, seed). Returns false when the file cannot be
/// read/written or is too small to carry the fault (kStaleVersion needs
/// the full 32-byte header).
bool InjectCheckpointFault(const std::string& path, CheckpointFault fault,
                           uint64_t seed);

}  // namespace streamop

#endif  // STREAMOP_STREAM_FAULT_INJECTION_H_
