#include "stream/pcap_reader.h"

#include <cinttypes>

namespace streamop {

namespace {

// No real capture exceeds a 64K snaplen by much; a length past this means
// we lost record-boundary sync (corrupt file), not a big packet.
constexpr uint32_t kMaxCaptureBytes = 1u << 18;

uint64_t RecordTsNs(const PcapRecordHeader& rh, const PcapGlobalHeader& g) {
  const uint64_t frac_ns =
      g.nanosecond ? rh.ts_frac : uint64_t{rh.ts_frac} * 1000ull;
  return uint64_t{rh.ts_sec} * 1000000000ull + frac_ns;
}

}  // namespace

PcapReader::PcapReader(PcapReaderConfig config) : config_(std::move(config)) {}

PcapReader::~PcapReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Status PcapReader::Open() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  std::FILE* f = std::fopen(config_.path.c_str(), "rb");
  if (f == nullptr) {
    last_status_ = Status::IOError("cannot open pcap file: " + config_.path);
    return last_status_;
  }
  uint8_t g[kPcapGlobalHeaderSize];
  if (std::fread(g, 1, sizeof(g), f) != sizeof(g)) {
    std::fclose(f);
    last_status_ =
        Status::IOError("pcap file shorter than its global header: " +
                        config_.path);
    return last_status_;
  }
  if (!DecodePcapGlobalHeader(g, &header_)) {
    std::fclose(f);
    last_status_ = Status::IOError("not a pcap file (bad magic): " +
                                   config_.path);
    return last_status_;
  }

  std::fseek(f, 0, SEEK_END);
  file_size_ = static_cast<uint64_t>(std::ftell(f));

  base_ts_ns_ = 0;
  if (config_.rebase_timestamps) {
    // The rebase base is always the file's first record, independent of
    // where we resume — a restored run must rebase identically.
    std::fseek(f, kPcapGlobalHeaderSize, SEEK_SET);
    uint8_t rh_buf[kPcapRecordHeaderSize];
    if (std::fread(rh_buf, 1, sizeof(rh_buf), f) == sizeof(rh_buf)) {
      PcapRecordHeader rh;
      DecodePcapRecordHeader(rh_buf, header_, &rh);
      base_ts_ns_ = RecordTsNs(rh, header_);
    }
  }

  uint64_t start = kPcapGlobalHeaderSize;
  if (pending_seek_ > 0) {
    if (pending_seek_ < kPcapGlobalHeaderSize || pending_seek_ > file_size_) {
      std::fclose(f);
      char msg[160];
      std::snprintf(msg, sizeof(msg),
                    "resume offset %" PRIu64
                    " outside pcap file (size %" PRIu64 ")",
                    pending_seek_, file_size_);
      last_status_ = Status::IOError(msg);
      return last_status_;
    }
    start = pending_seek_;
  }
  std::fseek(f, static_cast<long>(start), SEEK_SET);

  file_ = f;
  offset_ = start;
  stats_.resume_offset = start;
  eof_ = false;
  last_status_ = Status::OK();
  return last_status_;
}

Status PcapReader::SeekTo(uint64_t offset) {
  pending_seek_ = offset;
  if (file_ == nullptr) return Status::OK();  // applied by the next Open()
  if (offset < kPcapGlobalHeaderSize || offset > file_size_) {
    return Status::InvalidArgument("pcap seek outside file bounds");
  }
  std::fseek(file_, static_cast<long>(offset), SEEK_SET);
  offset_ = offset;
  stats_.resume_offset = offset;
  eof_ = false;
  return Status::OK();
}

ResumableSource::ReadResult PcapReader::Read(PacketRecord* buf, size_t max,
                                             size_t* n_out) {
  *n_out = 0;
  if (file_ == nullptr) {
    last_status_ = Status::InvalidArgument("PcapReader::Read before Open");
    return ReadResult::kEnd;
  }
  if (eof_) return ReadResult::kEnd;

  size_t n = 0;
  uint8_t hdr[kPcapRecordHeaderSize];
  while (n < max) {
    if (std::fread(hdr, 1, sizeof(hdr), file_) != sizeof(hdr)) {
      eof_ = true;  // clean EOF, or a torn header: either way the end
      break;
    }
    PcapRecordHeader rh;
    DecodePcapRecordHeader(hdr, header_, &rh);
    if (rh.incl_len > kMaxCaptureBytes) {
      // Lost sync: a record length no real capture produces. Stop rather
      // than stream garbage; everything before this offset was good.
      eof_ = true;
      stats_.malformed_frames++;
      char msg[128];
      std::snprintf(msg, sizeof(msg),
                    "corrupt pcap record header at offset %" PRIu64, offset_);
      last_status_ = Status::IOError(msg);
      break;
    }
    capture_buf_.resize(rh.incl_len);
    if (rh.incl_len > 0 &&
        std::fread(capture_buf_.data(), 1, rh.incl_len, file_) !=
            rh.incl_len) {
      eof_ = true;  // torn capture tail: the record never finished writing
      break;
    }
    // The record is complete: the durable offset may now cover it.
    offset_ += kPcapRecordHeaderSize + rh.incl_len;
    stats_.frames++;

    PacketRecord rec;
    const uint64_t ts = RecordTsNs(rh, header_);
    if (!ExtractPacketFromCapture(capture_buf_.data(), rh.incl_len,
                                  header_.linktype, ts, &rec)) {
      stats_.malformed_frames++;
      continue;
    }
    if (config_.rebase_timestamps) {
      rec.ts_ns = ts >= base_ts_ns_ ? ts - base_ts_ns_ : 0;
    }
    buf[n++] = rec;
    stats_.records++;
  }
  *n_out = n;
  return n > 0 ? ReadResult::kRecords : ReadResult::kEnd;
}

}  // namespace streamop
