// PcapReader: a seekable, resumable ResumableSource over a classic pcap
// capture file (net/pcap_format.h).
//
// The durable offset is simply the file byte position at a record
// boundary: a restore seeks there and re-reads the identical bytes, so
// pcap crash recovery is provably byte-identical (tests/net_source_test.cc
// kills the process mid-file and diffs the outputs).
//
// Tolerances: both byte orders and both timestamp resolutions are
// accepted (detected from the magic); a file cut off mid-record — a torn
// capture tail — is a clean end of stream, not an error; packets whose
// captured bytes can't be parsed to an IPv4 header (non-IP ethertypes,
// snaplen truncation) are counted as malformed and skipped, never
// guessed at.

#ifndef STREAMOP_STREAM_PCAP_READER_H_
#define STREAMOP_STREAM_PCAP_READER_H_

#include <cstdio>
#include <string>
#include <vector>

#include "net/pcap_format.h"
#include "stream/resumable_source.h"

namespace streamop {

struct PcapReaderConfig {
  std::string path;
  /// Subtract the file's first packet timestamp from every record, so a
  /// capture with absolute epoch timestamps feeds windows that start near
  /// t=0. The base is read from the head of the file even when resuming
  /// from a seek, so a restored run rebases identically.
  bool rebase_timestamps = false;
};

class PcapReader : public ResumableSource {
 public:
  explicit PcapReader(PcapReaderConfig config);
  ~PcapReader() override;

  PcapReader(const PcapReader&) = delete;
  PcapReader& operator=(const PcapReader&) = delete;

  const char* kind() const override { return "pcap"; }
  uint64_t stream_id() const override {
    return SourceStreamId(describe());
  }
  std::string describe() const override { return "pcap:" + config_.path; }
  Status Open() override;
  ReadResult Read(PacketRecord* buf, size_t max, size_t* n_out) override;
  uint64_t durable_offset() const override { return offset_; }
  Status SeekTo(uint64_t offset) override;
  uint64_t offset_lag() const override {
    return file_size_ > offset_ ? file_size_ - offset_ : 0;
  }
  const SourceIngestStats& stats() const override { return stats_; }
  Status last_status() const override { return last_status_; }

  /// Parsed global header (valid after Open), for tests.
  const PcapGlobalHeader& header() const { return header_; }

 private:
  PcapReaderConfig config_;
  std::FILE* file_ = nullptr;
  PcapGlobalHeader header_;
  uint64_t offset_ = 0;        // next unread record header's byte position
  uint64_t pending_seek_ = 0;  // 0 = start at the first record
  uint64_t file_size_ = 0;
  uint64_t base_ts_ns_ = 0;
  bool eof_ = false;
  SourceIngestStats stats_;
  Status last_status_ = Status::OK();
  std::vector<uint8_t> capture_buf_;
};

}  // namespace streamop

#endif  // STREAMOP_STREAM_PCAP_READER_H_
