#include "stream/socket_source.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <ctime>

namespace streamop {

namespace {

int64_t NowMs() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return ts.tv_sec * 1000 + ts.tv_nsec / 1000000;
}

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

SocketSource::SocketSource(SocketSourceConfig config)
    : config_(std::move(config)), jitter_(config_.backoff_seed) {
  dgram_buf_.resize(kFrameHeaderSize + kMaxFramePayload);
}

SocketSource::~SocketSource() {
  if (fd_ >= 0) ::close(fd_);
}

std::string SocketSource::describe() const {
  if (config_.mode == SocketSourceConfig::Mode::kUdp) {
    return "udp:" + std::to_string(config_.port);
  }
  return "tcp:" + config_.host + ":" + std::to_string(config_.port);
}

Status SocketSource::Open() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rdbuf_.clear();
  rdpos_ = 0;
  fin_seen_ = false;
  attempts_ = 0;
  last_rx_ms_ = NowMs();
  last_status_ = Status::OK();

  if (config_.mode == SocketSourceConfig::Mode::kUdp) {
    fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd_ < 0) {
      return Status::IOError("udp socket: " + std::string(strerror(errno)));
    }
    int one = 1;
    setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(config_.port);
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      const Status st = Status::IOError("udp bind port " +
                                        std::to_string(config_.port) + ": " +
                                        strerror(errno));
      ::close(fd_);
      fd_ = -1;
      return st;
    }
    socklen_t alen = sizeof(addr);
    getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &alen);
    config_.port = ntohs(addr.sin_port);
    SetNonBlocking(fd_);
    peer_known_ = false;
    state_ = State::kAwaitPeer;
  } else {
    std::memset(&connect_addr_, 0, sizeof(connect_addr_));
    connect_addr_.sin_family = AF_INET;
    connect_addr_.sin_port = htons(config_.port);
    const std::string addr =
        config_.host == "localhost" ? "127.0.0.1" : config_.host;
    if (inet_pton(AF_INET, addr.c_str(), &connect_addr_.sin_addr) != 1) {
      return Status::InvalidArgument("not a numeric IPv4 address: " +
                                     config_.host);
    }
    // The actual connect happens on the first Read(): connection setup is
    // part of the same bounded-backoff state machine as reconnects.
    state_ = State::kBackoff;
    next_attempt_ms_ = 0;
  }
  stats_.resume_offset = durable_offset();
  return Status::OK();
}

Status SocketSource::SeekTo(uint64_t offset) {
  pending_.clear();
  pending_pos_ = 0;
  next_seq_ = offset;
  producer_head_ = std::max(producer_head_, offset);
  fin_seen_ = false;
  stats_.resume_offset = offset;
  return Status::OK();
}

void SocketSource::InjectDisconnect() {
  if (state_ == State::kClosed || state_ == State::kEnded) return;
  if (config_.mode == SocketSourceConfig::Mode::kUdp) {
    // Forget the producer: the next datagram re-learns it and re-HELLOs.
    peer_known_ = false;
    state_ = State::kAwaitPeer;
  } else {
    BeginReconnect("injected disconnect");
  }
}

void SocketSource::Fail(const std::string& why) {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  state_ = State::kEnded;
  last_status_ = Status::IOError(why + " (" + describe() + ")");
}

int64_t SocketSource::BackoffDelayMs() {
  int64_t delay = config_.backoff_initial_ms;
  for (int i = 1; i < attempts_ && delay < config_.backoff_max_ms; ++i) {
    delay *= 2;
  }
  delay = std::min<int64_t>(delay, config_.backoff_max_ms);
  // Jitter to [0.5, 1.0) of the nominal delay: restarting consumers
  // shouldn't hammer a recovering producer in lockstep.
  const double scale = 0.5 + 0.5 * jitter_.NextDouble();
  return std::max<int64_t>(1, static_cast<int64_t>(delay * scale));
}

void SocketSource::BeginReconnect(const char* why) {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rdbuf_.clear();
  rdpos_ = 0;
  if (state_ == State::kEnded) return;
  stats_.reconnects++;
  if (++attempts_ > config_.max_reconnect_attempts) {
    Fail(std::string("reconnect budget exhausted: ") + why);
    return;
  }
  state_ = State::kBackoff;
  next_attempt_ms_ = NowMs() + BackoffDelayMs();
}

size_t SocketSource::TakePending(PacketRecord* buf, size_t max) {
  size_t n = 0;
  while (n < max && pending_pos_ < pending_.size()) {
    buf[n++] = pending_[pending_pos_++].second;
  }
  if (pending_pos_ >= pending_.size()) {
    pending_.clear();
    pending_pos_ = 0;
  } else if (pending_pos_ >= 8192) {
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<long>(pending_pos_));
    pending_pos_ = 0;
  }
  return n;
}

void SocketSource::ProcessData(const FrameHeader& h, const uint8_t* payload) {
  stats_.frames++;
  const uint64_t start = h.seq;
  const uint64_t count = h.count;
  if (count == 0) return;
  if (start + count <= next_seq_) {
    // Entirely behind the frontier: a resent or reordered frame.
    stats_.duplicate_records += count;
    return;
  }
  uint64_t skip = 0;
  if (start < next_seq_) {
    skip = next_seq_ - start;  // overlap: deliver only the fresh tail
    stats_.duplicate_records += skip;
  } else if (start > next_seq_) {
    stats_.gaps++;
    stats_.gap_records += start - next_seq_;
    next_seq_ = start;
  }
  for (uint64_t i = skip; i < count; ++i) {
    PacketRecord rec;
    DecodeWireRecord(payload + i * kWireRecordSize, &rec);
    pending_.emplace_back(start + i, rec);
  }
  next_seq_ += count - skip;
  stats_.records += count - skip;
  producer_head_ = std::max(producer_head_, next_seq_);
}

void SocketSource::HandleFrame(const FrameHeader& h, const uint8_t* payload) {
  switch (h.type) {
    case FrameType::kData:
      // In kAwaitAck these are in-flight frames from before our HELLO
      // (a restarted consumer catching the producer mid-stream): ignore
      // them rather than booking a bogus gap; the ACK rewinds the stream.
      if (state_ == State::kStreaming) ProcessData(h, payload);
      break;
    case FrameType::kAck:
      if (state_ == State::kAwaitAck) {
        attempts_ = 0;
        state_ = State::kStreaming;
        if (h.seq > next_seq_) {
          // The producer's replay window no longer reaches our offset:
          // the records in between are gone. Book them and move on —
          // at-most-once, never silent loss.
          stats_.gaps++;
          stats_.gap_records += h.seq - next_seq_;
          next_seq_ = h.seq;
        }
      }
      break;
    case FrameType::kHeartbeat:
      stats_.heartbeats++;
      producer_head_ = std::max(producer_head_, h.seq);
      // A heartbeat while we think we're streaming means the producer
      // restarted and is waiting for a handshake: re-HELLO (UDP only;
      // TCP handshakes ride each connection).
      if (config_.mode == SocketSourceConfig::Mode::kUdp &&
          state_ == State::kStreaming && peer_known_) {
        stats_.reconnects++;
        SendHelloUdp();
        state_ = State::kAwaitAck;
      }
      break;
    case FrameType::kFin:
      fin_seen_ = true;
      fin_head_ = h.seq;
      producer_head_ = std::max(producer_head_, h.seq);
      break;
    case FrameType::kHello:
      break;  // producer-to-consumer direction never carries HELLO
  }
}

void SocketSource::MaybeFinish() {
  if (state_ == State::kEnded || !fin_seen_) return;
  if (pending_pos_ < pending_.size()) return;  // drain the tail first
  if (next_seq_ < fin_head_) {
    // Records between our frontier and the producer's final head never
    // arrived (datagrams lost at the very end).
    stats_.gaps++;
    stats_.gap_records += fin_head_ - next_seq_;
    next_seq_ = fin_head_;
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  state_ = State::kEnded;
  last_status_ = Status::OK();
}

void SocketSource::SendHelloUdp() {
  uint8_t frame[kFrameHeaderSize];
  const size_t len =
      BuildFrame(FrameType::kHello, durable_offset(), nullptr, 0, frame);
  (void)::sendto(fd_, frame, len, 0,
                 reinterpret_cast<const sockaddr*>(&peer_addr_),
                 sizeof(peer_addr_));
  hello_sent_ms_ = NowMs();
}

bool SocketSource::ParseStreamBuffer() {
  while (state_ != State::kEnded) {
    const size_t avail = rdbuf_.size() - rdpos_;
    if (avail < kFrameHeaderSize) break;
    FrameHeader h;
    if (!DecodeFrameHeader(rdbuf_.data() + rdpos_, kFrameHeaderSize, &h)) {
      stats_.malformed_frames++;
      return false;  // desync: TCP recovers at connection granularity
    }
    if (avail < kFrameHeaderSize + h.payload_len) break;  // partial frame
    const uint8_t* payload = rdbuf_.data() + rdpos_ + kFrameHeaderSize;
    if (!VerifyFramePayload(h, payload)) {
      stats_.malformed_frames++;
      return false;
    }
    rdpos_ += kFrameHeaderSize + h.payload_len;
    HandleFrame(h, payload);
  }
  if (rdpos_ > 0) {
    rdbuf_.erase(rdbuf_.begin(), rdbuf_.begin() + static_cast<long>(rdpos_));
    rdpos_ = 0;
  }
  return true;
}

bool SocketSource::TryConnectTcp(int timeout_ms) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    BeginReconnect("socket failed");
    return false;
  }
  SetNonBlocking(fd_);
  int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const int r = ::connect(fd_, reinterpret_cast<sockaddr*>(&connect_addr_),
                          sizeof(connect_addr_));
  if (r != 0 && errno == EINPROGRESS) {
    pollfd p{fd_, POLLOUT, 0};
    if (::poll(&p, 1, std::max(timeout_ms, 100)) <= 0) {
      BeginReconnect("connect timeout");
      return false;
    }
    int soerr = 0;
    socklen_t slen = sizeof(soerr);
    getsockopt(fd_, SOL_SOCKET, SO_ERROR, &soerr, &slen);
    if (soerr != 0) {
      BeginReconnect("connect failed");
      return false;
    }
  } else if (r != 0 && errno != EISCONN) {
    BeginReconnect("connect failed");
    return false;
  }

  uint8_t hello[kFrameHeaderSize];
  const size_t len =
      BuildFrame(FrameType::kHello, durable_offset(), nullptr, 0, hello);
  size_t off = 0;
  while (off < len) {
    const ssize_t m = ::send(fd_, hello + off, len - off, MSG_NOSIGNAL);
    if (m > 0) {
      off += static_cast<size_t>(m);
    } else if (m < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd p{fd_, POLLOUT, 0};
      ::poll(&p, 1, 100);
    } else if (m < 0 && errno == EINTR) {
      continue;
    } else {
      BeginReconnect("hello send failed");
      return false;
    }
  }
  rdbuf_.clear();
  rdpos_ = 0;
  state_ = State::kAwaitAck;
  hello_sent_ms_ = NowMs();
  last_rx_ms_ = NowMs();
  return true;
}

void SocketSource::PumpUdp(int timeout_ms) {
  const int64_t now = NowMs();
  if (state_ == State::kAwaitAck &&
      now - hello_sent_ms_ >= config_.hello_retry_ms) {
    if (++attempts_ > config_.max_reconnect_attempts) {
      Fail("handshake: no ACK from producer");
      return;
    }
    stats_.reconnects++;
    SendHelloUdp();
  } else if (state_ == State::kStreaming &&
             now - last_rx_ms_ >= config_.stall_rehello_ms && peer_known_) {
    // Mid-stream silence: nudge the producer on the same bounded budget.
    if (++attempts_ > config_.max_reconnect_attempts) {
      Fail("producer stalled");
      return;
    }
    stats_.reconnects++;
    SendHelloUdp();
    state_ = State::kAwaitAck;
  }

  pollfd p{fd_, POLLIN, 0};
  if (::poll(&p, 1, timeout_ms) <= 0 || !(p.revents & POLLIN)) return;
  for (;;) {
    sockaddr_in from;
    socklen_t flen = sizeof(from);
    const ssize_t m =
        ::recvfrom(fd_, dgram_buf_.data(), dgram_buf_.size(), MSG_DONTWAIT,
                   reinterpret_cast<sockaddr*>(&from), &flen);
    if (m <= 0) break;
    last_rx_ms_ = NowMs();
    FrameHeader h;
    if (static_cast<size_t>(m) < kFrameHeaderSize ||
        !DecodeFrameHeader(dgram_buf_.data(), static_cast<size_t>(m), &h) ||
        static_cast<size_t>(m) != kFrameHeaderSize + h.payload_len ||
        !VerifyFramePayload(h, dgram_buf_.data() + kFrameHeaderSize)) {
      stats_.malformed_frames++;  // quarantined, never parsed further
      continue;
    }
    if (!peer_known_) {
      peer_addr_ = from;
      peer_known_ = true;
    }
    if (state_ == State::kAwaitPeer) {
      // First contact: ask for our resume offset before consuming data.
      SendHelloUdp();
      state_ = State::kAwaitAck;
    }
    HandleFrame(h, dgram_buf_.data() + kFrameHeaderSize);
    if (state_ == State::kEnded) break;
  }
}

void SocketSource::PumpTcp(int timeout_ms) {
  const int64_t now = NowMs();
  if (state_ == State::kBackoff) {
    if (now < next_attempt_ms_) {
      const int64_t wait = std::min<int64_t>(timeout_ms, next_attempt_ms_ - now);
      if (wait > 0) ::poll(nullptr, 0, static_cast<int>(wait));
      return;
    }
    TryConnectTcp(timeout_ms);
    return;
  }
  if (state_ == State::kAwaitAck &&
      now - hello_sent_ms_ >= config_.hello_retry_ms) {
    // The ACK rides the same ordered stream as our HELLO; its absence
    // means the connection is wedged, so reconnect rather than re-send.
    BeginReconnect("no ACK on connection");
    return;
  }
  if (fd_ < 0) return;  // FIN already drained the socket

  pollfd p{fd_, POLLIN, 0};
  if (::poll(&p, 1, timeout_ms) <= 0) return;

  bool saw_eof = false;
  bool io_error = false;
  uint8_t tmp[16384];
  for (;;) {
    const ssize_t m = ::recv(fd_, tmp, sizeof(tmp), MSG_DONTWAIT);
    if (m > 0) {
      rdbuf_.insert(rdbuf_.end(), tmp, tmp + m);
      last_rx_ms_ = NowMs();
      continue;
    }
    if (m == 0) {
      saw_eof = true;
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // drained
    } else if (errno == EINTR) {
      continue;
    } else {
      io_error = true;
    }
    break;
  }

  // Parse before acting on EOF: the FIN frame usually lands in the same
  // poll as the peer's close.
  if (!ParseStreamBuffer()) {
    BeginReconnect("corrupt frame in stream");
    return;
  }
  if (state_ == State::kEnded) return;
  if (io_error) {
    BeginReconnect("recv failed");
    return;
  }
  if (saw_eof) {
    if (fin_seen_) {
      ::close(fd_);
      fd_ = -1;
    } else {
      // Half-close or a crashed producer mid-stream: recover by
      // reconnecting and re-HELLOing at our durable offset. Any torn
      // frame tail in rdbuf_ is discarded with the connection.
      BeginReconnect("peer closed mid-stream");
    }
  }
}

void SocketSource::Pump(int timeout_ms) {
  if (config_.mode == SocketSourceConfig::Mode::kUdp) {
    PumpUdp(timeout_ms);
  } else {
    PumpTcp(timeout_ms);
  }
}

ResumableSource::ReadResult SocketSource::Read(PacketRecord* buf, size_t max,
                                               size_t* n_out) {
  *n_out = 0;
  if (state_ == State::kClosed) {
    last_status_ = Status::InvalidArgument("SocketSource::Read before Open");
    return ReadResult::kEnd;
  }
  size_t n = TakePending(buf, max);
  MaybeFinish();
  const int64_t deadline = NowMs() + config_.read_timeout_ms;
  while (n == 0 && state_ != State::kEnded) {
    const int64_t left = deadline - NowMs();
    if (left <= 0) break;
    Pump(static_cast<int>(std::min<int64_t>(left, 50)));
    n += TakePending(buf + n, max - n);
    MaybeFinish();
  }
  *n_out = n;
  if (n > 0) return ReadResult::kRecords;
  if (state_ == State::kEnded) return ReadResult::kEnd;
  stats_.heartbeats++;  // an idle read: the runtime's heartbeat tick
  return ReadResult::kIdle;
}

}  // namespace streamop
