// ResumableSource: an external ingest source (socket, capture file) whose
// read position can be persisted and restored (DESIGN.md §11).
//
// This is the contract between the ingest layer and crash recovery. Each
// implementation exposes a *durable offset* — a monotonically advancing
// position in the input that, together with the source's identity (kind +
// stream_id), names exactly which records have been delivered:
//
//   pcap_reader:    the file byte position at a record boundary, so a
//                   restore seeks and re-reads byte-identically;
//   socket_source:  the producer's record sequence number, re-announced to
//                   the producer in a HELLO/ACK handshake, so a restore
//                   resumes at-most-once (an ACK beyond the requested
//                   offset is booked as a gap, never silently replayed).
//
// CheckpointManager persists (kind, stream_id, durable_offset) next to the
// operator snapshot; TwoLevelRuntime::RunSource only snapshots at ingest
// batch boundaries, where every record read up to durable_offset() has
// been fully processed, so the pair is always consistent.
//
// The interface is single-threaded and poll-driven: Read() blocks at most
// the configured timeout and returns kIdle on quiet periods (the runtime
// turns those into heartbeat-empty batches so windows still close on
// time). Implementations own their fds and recover from transient failures
// internally (reconnect with backoff); only unrecoverable states surface
// as kEnd + last_status().

#ifndef STREAMOP_STREAM_RESUMABLE_SOURCE_H_
#define STREAMOP_STREAM_RESUMABLE_SOURCE_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "net/packet.h"

namespace streamop {

/// Counters a source keeps about its own ingest, snapshotted into
/// RunReport and mirrored to obs::IngestSourceMetrics by the runtime.
struct SourceIngestStats {
  uint64_t frames = 0;             // well-formed frames / pcap records
  uint64_t records = 0;            // PacketRecords delivered to the engine
  uint64_t malformed_frames = 0;   // quarantined (bad magic/CRC/framing)
  uint64_t reconnects = 0;         // socket reconnects / handshake retries
  uint64_t gaps = 0;               // sequence gaps detected
  uint64_t gap_records = 0;        // records lost to gaps
  uint64_t duplicate_records = 0;  // duplicates/reorders dropped
  uint64_t heartbeats = 0;         // idle reads (timeout or HEARTBEAT)
  uint64_t resume_offset = 0;      // durable offset at the last (re)start
};

/// FNV-1a hash of a source's identity string (file path, endpoint) — the
/// stream_id() implementations all derive from this so checkpointed
/// offsets can be matched against the configured source on restore.
inline uint64_t SourceStreamId(const std::string& identity) {
  uint64_t h = 1469598103934665603ull;
  for (const char c : identity) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

class ResumableSource {
 public:
  enum class ReadResult {
    kRecords,  // one or more records were appended to the buffer
    kIdle,     // nothing arrived within the timeout; stream still live
    kEnd,      // stream is over (EOF / FIN / unrecoverable failure)
  };

  virtual ~ResumableSource() = default;

  /// Stable source family tag persisted in checkpoints ("pcap", "udp",
  /// "tcp"). A restored checkpoint whose kind doesn't match the configured
  /// source falls back to positional replay instead of seeking.
  virtual const char* kind() const = 0;

  /// Identity within the kind (FNV-1a hash of describe(): the file path
  /// or the endpoint). Guards against resuming an offset into a different
  /// file or stream than the one that was checkpointed.
  virtual uint64_t stream_id() const = 0;

  /// Human-readable description for logs and RunReport ("pcap:trace.pcap",
  /// "udp:9901", "tcp:127.0.0.1:9902").
  virtual std::string describe() const = 0;

  /// Acquires the underlying resource (opens the file, binds/connects the
  /// socket, runs the initial handshake). Must be called before Read().
  virtual Status Open() = 0;

  /// Reads up to `max` records into `buf`. Returns kRecords with the count
  /// in *n_out, kIdle after the read timeout with no data (*n_out = 0), or
  /// kEnd when the stream is finished (*n_out may still carry a final
  /// partial batch; check last_status() for the reason).
  virtual ReadResult Read(PacketRecord* buf, size_t max, size_t* n_out) = 0;

  /// The durable input offset covering every record returned so far.
  /// Monotonically non-decreasing; only meaningful at batch boundaries.
  virtual uint64_t durable_offset() const = 0;

  /// Repositions the source so the next Read() continues from `offset`
  /// (pcap: seek to the byte position; socket: request the offset in the
  /// next HELLO). Called before Open() when restoring from a checkpoint.
  virtual Status SeekTo(uint64_t offset) = 0;

  /// How far the producer is ahead of what we've consumed: pcap = bytes
  /// to EOF, socket = producer head seq (from HEARTBEAT/DATA) minus
  /// durable_offset(). 0 when unknown or fully caught up.
  virtual uint64_t offset_lag() const = 0;

  virtual const SourceIngestStats& stats() const = 0;

  /// Terminal status once Read() returns kEnd: OK for a clean EOF/FIN,
  /// an error for unrecoverable failures (reconnect budget exhausted,
  /// unreadable file).
  virtual Status last_status() const = 0;

  /// Test hook: drop the current connection as if the peer vanished. The
  /// next Read() goes through the reconnect path. No-op for file sources.
  virtual void InjectDisconnect() {}
};

}  // namespace streamop

#endif  // STREAMOP_STREAM_RESUMABLE_SOURCE_H_
