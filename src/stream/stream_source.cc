#include "stream/stream_source.h"

namespace streamop {

Tuple PacketToTuple(const PacketRecord& p) {
  std::vector<Value> vals;
  vals.reserve(8);
  vals.push_back(Value::UInt(p.ts_sec()));
  vals.push_back(Value::UInt(p.ts_ns));
  vals.push_back(Value::UInt(p.src_ip));
  vals.push_back(Value::UInt(p.dst_ip));
  vals.push_back(Value::UInt(p.src_port));
  vals.push_back(Value::UInt(p.dst_port));
  vals.push_back(Value::UInt(p.proto));
  vals.push_back(Value::UInt(p.len));
  return Tuple(std::move(vals));
}

}  // namespace streamop
