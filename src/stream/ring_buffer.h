// A fixed-capacity single-producer / single-consumer ring buffer, the data
// path between a packet source and the low-level query node — mirroring
// Gigascope, where "data from a source stream is fed to the low level
// queries from a ring buffer without copying".
//
// Lock-free: one producer thread calls TryPush / PushBatch, one consumer
// thread calls TryPop / PopBatch. Also usable single-threaded (the
// benchmarks replay traces synchronously).

#ifndef STREAMOP_STREAM_RING_BUFFER_H_
#define STREAMOP_STREAM_RING_BUFFER_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <vector>

#include "obs/metrics.h"

namespace streamop {

template <typename T>
class RingBuffer {
 public:
  /// Capacity is rounded up to a power of two; one slot is kept empty to
  /// distinguish full from empty, so usable capacity is capacity()-1.
  explicit RingBuffer(size_t min_capacity) {
    size_t cap = 2;
    while (cap < min_capacity + 1) cap <<= 1;
    buf_.resize(cap);
    mask_ = cap - 1;
  }

  RingBuffer(const RingBuffer&) = delete;
  RingBuffer& operator=(const RingBuffer&) = delete;

  size_t capacity() const { return buf_.size() - 1; }

  /// Producer-side end-of-stream: after Close() every TryPush fails (not
  /// counted as an overload failure) while the consumer keeps draining what
  /// is already buffered. `closed() && empty()` is the consumer's EOS test.
  void Close() { closed_.store(true, std::memory_order_release); }
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Hard abort from either side: poisons the channel so both TryPush and
  /// TryPop fail immediately, unsticking whichever thread is still looping.
  /// Buffered items are abandoned. Poison implies Close.
  void Poison() {
    poisoned_.store(true, std::memory_order_release);
    closed_.store(true, std::memory_order_release);
  }
  bool poisoned() const { return poisoned_.load(std::memory_order_acquire); }

  /// Attaches data-path metrics (push/pop totals, push failures, occupancy
  /// high-water mark). The bundle must outlive the buffer; pass nullptr to
  /// detach. The hwm gauge is written by the producer thread only.
  void AttachMetrics(const obs::RingBufferMetrics* metrics) {
    metrics_ = metrics;
  }

  bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  size_t size() const {
    size_t h = head_.load(std::memory_order_acquire);
    size_t t = tail_.load(std::memory_order_acquire);
    return (t - h) & mask_;
  }

  /// Producer side. Returns false if the buffer is full (the caller decides
  /// whether to drop or retry; Gigascope drops under overload).
  bool TryPush(const T& item) {
    if (closed()) return false;  // EOS / poisoned: reject without counting
    size_t t = tail_.load(std::memory_order_relaxed);
    size_t next = (t + 1) & mask_;
    size_t h = head_.load(std::memory_order_acquire);
    if (next == h) {
      if (obs::kStatsEnabled && metrics_ != nullptr) {
        metrics_->push_failures->Add();
      }
      return false;
    }
    buf_[t] = item;
    tail_.store(next, std::memory_order_release);
    if (obs::kStatsEnabled && metrics_ != nullptr) {
      metrics_->pushes->Add();
      metrics_->occupancy_hwm->SetMax(
          static_cast<double>((next - h) & mask_));
    }
    return true;
  }

  /// Pushes up to n items; returns how many were accepted.
  size_t PushBatch(const T* items, size_t n) {
    size_t pushed = 0;
    while (pushed < n && TryPush(items[pushed])) ++pushed;
    return pushed;
  }

  /// Consumer side. Returns false if the buffer is empty.
  bool TryPop(T* out) {
    if (poisoned()) return false;  // hard abort: abandon buffered items
    size_t h = head_.load(std::memory_order_relaxed);
    if (h == tail_.load(std::memory_order_acquire)) return false;
    *out = buf_[h];
    head_.store((h + 1) & mask_, std::memory_order_release);
    if (obs::kStatsEnabled && metrics_ != nullptr) metrics_->pops->Add();
    return true;
  }

  /// Pops up to max items into out; returns how many were popped.
  size_t PopBatch(T* out, size_t max) {
    size_t popped = 0;
    while (popped < max && TryPop(&out[popped])) ++popped;
    return popped;
  }

 private:
  std::vector<T> buf_;
  const obs::RingBufferMetrics* metrics_ = nullptr;
  size_t mask_ = 0;
  std::atomic<size_t> head_{0};
  std::atomic<size_t> tail_{0};
  std::atomic<bool> closed_{false};
  std::atomic<bool> poisoned_{false};
};

}  // namespace streamop

#endif  // STREAMOP_STREAM_RING_BUFFER_H_
