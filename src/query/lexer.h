// Hand-written lexer for the query language. Keywords are case-insensitive;
// identifiers keep their spelling. An identifier immediately followed by
// '$' (count_distinct$) is marked as a superaggregate reference.

#ifndef STREAMOP_QUERY_LEXER_H_
#define STREAMOP_QUERY_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "query/token.h"

namespace streamop {

/// Tokenizes the whole query text; the trailing token is always kEof.
Result<std::vector<Token>> Lex(const std::string& text);

}  // namespace streamop

#endif  // STREAMOP_QUERY_LEXER_H_
