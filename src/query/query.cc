#include "query/query.h"

#include "query/parser.h"

namespace streamop {

Result<CompiledQuery> CompileQuery(const std::string& text,
                                   const Catalog& catalog,
                                   const AnalyzerOptions& options) {
  STREAMOP_ASSIGN_OR_RETURN(ParsedQuery parsed, ParseQuery(text));
  return AnalyzeQuery(parsed, catalog, options);
}

}  // namespace streamop
