// Catalog: the set of named input streams a query may reference.

#ifndef STREAMOP_QUERY_CATALOG_H_
#define STREAMOP_QUERY_CATALOG_H_

#include <string>
#include <unordered_map>

#include "common/status.h"
#include "common/string_util.h"
#include "tuple/schema.h"

namespace streamop {

class Catalog {
 public:
  Status RegisterStream(SchemaPtr schema) {
    std::string key = AsciiToLower(schema->name());
    if (streams_.count(key) > 0) {
      return Status::AlreadyExists("stream '" + schema->name() +
                                   "' already registered");
    }
    streams_.emplace(std::move(key), std::move(schema));
    return Status::OK();
  }

  /// Registers an alias (e.g. both PKT and TCP map to the packet schema).
  Status RegisterAlias(const std::string& alias, SchemaPtr schema) {
    std::string key = AsciiToLower(alias);
    if (streams_.count(key) > 0) {
      return Status::AlreadyExists("stream '" + alias + "' already registered");
    }
    streams_.emplace(std::move(key), std::move(schema));
    return Status::OK();
  }

  Result<SchemaPtr> Find(const std::string& name) const {
    auto it = streams_.find(AsciiToLower(name));
    if (it == streams_.end()) {
      return Status::AnalysisError("unknown stream '" + name + "'");
    }
    return it->second;
  }

  /// A catalog pre-loaded with the packet schema under the names the paper
  /// uses (PKT, PKTS, TCP).
  static Catalog Default() {
    Catalog c;
    SchemaPtr pkt = MakePacketSchema();
    (void)c.RegisterStream(pkt);
    (void)c.RegisterAlias("PKTS", pkt);
    (void)c.RegisterAlias("TCP", pkt);
    return c;
  }

 private:
  std::unordered_map<std::string, SchemaPtr> streams_;
};

}  // namespace streamop

#endif  // STREAMOP_QUERY_CATALOG_H_
