// Recursive-descent parser producing the unanalyzed query AST.

#ifndef STREAMOP_QUERY_PARSER_H_
#define STREAMOP_QUERY_PARSER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "expr/expr.h"

namespace streamop {

/// One SELECT or GROUP BY item: an expression with an optional alias.
struct SelectItem {
  ExprPtr expr;
  std::string alias;  // empty when none given
};

/// The parsed (not yet analyzed) query.
struct ParsedQuery {
  std::vector<SelectItem> select;
  std::string from;
  ExprPtr where;
  std::vector<SelectItem> group_by;
  std::vector<std::string> supergroup;  // names of group-by variables
  ExprPtr having;
  ExprPtr cleaning_when;
  ExprPtr cleaning_by;
};

/// Parses query text. Grammar (clauses in this order, [] optional):
///   SELECT items FROM ident [WHERE expr] [GROUP BY items]
///   [SUPERGROUP [BY] names] [HAVING expr]
///   [CLEANING WHEN expr] [CLEANING BY expr] [;]
Result<ParsedQuery> ParseQuery(const std::string& text);

/// Parses a standalone expression (used by tests and the expression REPL).
Result<ExprPtr> ParseExpression(const std::string& text);

}  // namespace streamop

#endif  // STREAMOP_QUERY_PARSER_H_
