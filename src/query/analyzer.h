// Semantic analysis: resolves names, classifies function calls (scalar /
// aggregate / superaggregate / stateful), extracts aggregate and
// superaggregate specs, infers window-defining (ordered) group-by
// variables, and validates clause placement — producing an executable
// SamplingQueryPlan or SelectionPlan.

#ifndef STREAMOP_QUERY_ANALYZER_H_
#define STREAMOP_QUERY_ANALYZER_H_

#include <memory>

#include "common/status.h"
#include "core/sampling_operator.h"
#include "query/catalog.h"
#include "query/parser.h"
#include "query/selection_operator.h"

namespace streamop {

struct AnalyzerOptions {
  uint64_t seed = 1;  // seeds per-supergroup SFUN RNG streams
};

enum class CompiledQueryKind {
  kSampling,   // grouped query -> SamplingOperator
  kSelection,  // ungrouped query -> SelectionOperator
};

struct CompiledQuery {
  CompiledQueryKind kind = CompiledQueryKind::kSelection;
  std::shared_ptr<SamplingQueryPlan> sampling;
  std::shared_ptr<SelectionPlan> selection;

  SchemaPtr output_schema() const {
    return kind == CompiledQueryKind::kSampling ? sampling->output_schema
                                                : selection->output_schema;
  }
};

/// Analyzes a parsed query against the catalog.
Result<CompiledQuery> AnalyzeQuery(const ParsedQuery& query,
                                   const Catalog& catalog,
                                   const AnalyzerOptions& options = {});

}  // namespace streamop

#endif  // STREAMOP_QUERY_ANALYZER_H_
