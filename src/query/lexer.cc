#include "query/lexer.h"

#include <cctype>
#include <cstdlib>

#include "common/string_util.h"

namespace streamop {

const char* TokenKindToString(TokenKind k) {
  switch (k) {
    case TokenKind::kEof:
      return "end of input";
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kIntLiteral:
      return "integer literal";
    case TokenKind::kFloatLiteral:
      return "float literal";
    case TokenKind::kStringLiteral:
      return "string literal";
    case TokenKind::kSelect:
      return "SELECT";
    case TokenKind::kFrom:
      return "FROM";
    case TokenKind::kWhere:
      return "WHERE";
    case TokenKind::kGroup:
      return "GROUP";
    case TokenKind::kBy:
      return "BY";
    case TokenKind::kSupergroup:
      return "SUPERGROUP";
    case TokenKind::kHaving:
      return "HAVING";
    case TokenKind::kCleaning:
      return "CLEANING";
    case TokenKind::kWhen:
      return "WHEN";
    case TokenKind::kAs:
      return "AS";
    case TokenKind::kAnd:
      return "AND";
    case TokenKind::kOr:
      return "OR";
    case TokenKind::kNot:
      return "NOT";
    case TokenKind::kTrue:
      return "TRUE";
    case TokenKind::kFalse:
      return "FALSE";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kMinus:
      return "'-'";
    case TokenKind::kSlash:
      return "'/'";
    case TokenKind::kPercent:
      return "'%'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kNe:
      return "'<>'";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kSemicolon:
      return "';'";
  }
  return "?";
}

namespace {

struct Keyword {
  const char* text;
  TokenKind kind;
};

constexpr Keyword kKeywords[] = {
    {"select", TokenKind::kSelect},         {"from", TokenKind::kFrom},
    {"where", TokenKind::kWhere},           {"group", TokenKind::kGroup},
    {"by", TokenKind::kBy},                 {"supergroup", TokenKind::kSupergroup},
    {"having", TokenKind::kHaving},         {"cleaning", TokenKind::kCleaning},
    {"when", TokenKind::kWhen},             {"as", TokenKind::kAs},
    {"and", TokenKind::kAnd},               {"or", TokenKind::kOr},
    {"not", TokenKind::kNot},               {"true", TokenKind::kTrue},
    {"false", TokenKind::kFalse},
};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Lex(const std::string& text) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = text.size();

  auto push = [&](TokenKind kind, size_t offset) {
    Token t;
    t.kind = kind;
    t.offset = offset;
    out.push_back(std::move(t));
  };

  while (i < n) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments: -- to end of line.
    if (c == '-' && i + 1 < n && text[i + 1] == '-') {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    if (IsIdentStart(c)) {
      while (i < n && IsIdentChar(text[i])) ++i;
      std::string word = text.substr(start, i - start);
      std::string lower = AsciiToLower(word);
      bool matched = false;
      for (const Keyword& kw : kKeywords) {
        if (lower == kw.text) {
          // GROUP_BY is also written with an underscore in the paper; the
          // lexer treats the fused form as GROUP BY.
          push(kw.kind, start);
          matched = true;
          break;
        }
      }
      if (!matched) {
        if (lower == "group_by") {
          push(TokenKind::kGroup, start);
          push(TokenKind::kBy, start);
        } else {
          Token t;
          t.kind = TokenKind::kIdentifier;
          t.text = word;
          t.offset = start;
          if (i < n && text[i] == '$') {
            t.has_dollar = true;
            ++i;
          }
          out.push_back(std::move(t));
        }
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      while (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
      bool is_float = false;
      if (i < n && text[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(text[i + 1]))) {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
      }
      if (i < n && (text[i] == 'e' || text[i] == 'E')) {
        size_t j = i + 1;
        if (j < n && (text[j] == '+' || text[j] == '-')) ++j;
        if (j < n && std::isdigit(static_cast<unsigned char>(text[j]))) {
          is_float = true;
          i = j;
          while (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) {
            ++i;
          }
        }
      }
      Token t;
      t.offset = start;
      t.text = text.substr(start, i - start);
      if (is_float) {
        t.kind = TokenKind::kFloatLiteral;
        t.float_value = std::strtod(t.text.c_str(), nullptr);
      } else {
        t.kind = TokenKind::kIntLiteral;
        t.int_value = std::strtoull(t.text.c_str(), nullptr, 10);
      }
      out.push_back(std::move(t));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string s;
      while (i < n && text[i] != '\'') {
        s.push_back(text[i]);
        ++i;
      }
      if (i >= n) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      ++i;  // closing quote
      Token t;
      t.kind = TokenKind::kStringLiteral;
      t.text = std::move(s);
      t.offset = start;
      out.push_back(std::move(t));
      continue;
    }
    switch (c) {
      case ',':
        push(TokenKind::kComma, start);
        ++i;
        break;
      case '(':
        push(TokenKind::kLParen, start);
        ++i;
        break;
      case ')':
        push(TokenKind::kRParen, start);
        ++i;
        break;
      case '*':
        push(TokenKind::kStar, start);
        ++i;
        break;
      case '+':
        push(TokenKind::kPlus, start);
        ++i;
        break;
      case '-':
        push(TokenKind::kMinus, start);
        ++i;
        break;
      case '/':
        push(TokenKind::kSlash, start);
        ++i;
        break;
      case '%':
        push(TokenKind::kPercent, start);
        ++i;
        break;
      case ';':
        push(TokenKind::kSemicolon, start);
        ++i;
        break;
      case '=':
        push(TokenKind::kEq, start);
        ++i;
        break;
      case '!':
        if (i + 1 < n && text[i + 1] == '=') {
          push(TokenKind::kNe, start);
          i += 2;
        } else {
          return Status::ParseError("unexpected '!' at offset " +
                                    std::to_string(start));
        }
        break;
      case '<':
        if (i + 1 < n && text[i + 1] == '=') {
          push(TokenKind::kLe, start);
          i += 2;
        } else if (i + 1 < n && text[i + 1] == '>') {
          push(TokenKind::kNe, start);
          i += 2;
        } else {
          push(TokenKind::kLt, start);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && text[i + 1] == '=') {
          push(TokenKind::kGe, start);
          i += 2;
        } else {
          push(TokenKind::kGt, start);
          ++i;
        }
        break;
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(start));
    }
  }
  push(TokenKind::kEof, n);
  return out;
}

}  // namespace streamop
