#include "query/selection_operator.h"

#include "common/hash.h"
#include "expr/evaluator.h"

namespace streamop {

SelectionOperator::SelectionOperator(std::shared_ptr<const SelectionPlan> plan)
    : plan_(std::move(plan)) {
  const size_t n = plan_->sfun_states.size();
  blobs_.reserve(n);
  states_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const SfunStateDef* def = plan_->sfun_states[i];
    size_t words =
        (def->size + sizeof(std::max_align_t) - 1) / sizeof(std::max_align_t);
    blobs_.push_back(std::make_unique<std::max_align_t[]>(words));
    void* mem = blobs_.back().get();
    def->init(mem, nullptr, HashCombine(plan_->seed, i));
    states_.push_back(mem);
  }

  // Compile the WHERE and projection expressions once; the batched path
  // needs a program for every clause (row mode covers the stateful ones).
  bool ok = true;
  if (plan_->where != nullptr) {
    where_prog_ = ExprProgram::TryCompile(plan_->where.get());
    if (!where_prog_.has_value()) ok = false;
  }
  select_progs_.reserve(plan_->select_exprs.size());
  for (const ExprPtr& e : plan_->select_exprs) {
    select_progs_.push_back(ExprProgram::TryCompile(e.get()));
    if (!select_progs_.back().has_value()) ok = false;
  }
  batched_ok_ = ok;
  select_cols_.resize(plan_->select_exprs.size());
  select_col_ok_.assign(plan_->select_exprs.size(), 0);
}

SelectionOperator::~SelectionOperator() {
  for (size_t i = 0; i < states_.size(); ++i) {
    const SfunStateDef* def = plan_->sfun_states[i];
    if (def->destroy != nullptr) def->destroy(states_[i]);
  }
}

Result<bool> SelectionOperator::Process(const Tuple& input, Tuple* out) {
  ++tuples_in_;
  EvalContext ctx;
  ctx.input = &input;
  ctx.sfun_states = states_.data();
  ctx.num_sfun_states = states_.size();
  STREAMOP_ASSIGN_OR_RETURN(bool pass,
                            EvaluatePredicate(plan_->where.get(), ctx));
  if (!pass) return false;
  ++tuples_out_;
  // Project into the caller's tuple in place; a reused output tuple keeps
  // its capacity, so the projection itself never allocates.
  std::vector<Value>& row = out->mutable_values();
  row.clear();
  row.reserve(plan_->select_exprs.size());
  for (const ExprPtr& e : plan_->select_exprs) {
    STREAMOP_ASSIGN_OR_RETURN(Value v, Evaluate(*e, ctx));
    row.push_back(std::move(v));
  }
  return true;
}

Status SelectionOperator::ProcessBatchFallback(const TupleBatch& in,
                                               size_t first_lane,
                                               TupleBatch* out) {
  const size_t n = in.num_rows();
  const uint8_t* sel = in.selection();
  for (size_t i = first_lane; i < n; ++i) {
    if (!sel[i]) continue;
    in.MaterializeRow(i, &batch_row_);
    STREAMOP_ASSIGN_OR_RETURN(bool pass, Process(batch_row_, &row_out_));
    if (pass) out->AppendTuple(row_out_);
  }
  return Status::OK();
}

Status SelectionOperator::ProcessBatch(const TupleBatch& in, TupleBatch* out) {
  const size_t nsel = plan_->select_exprs.size();
  if (out->num_cols() != nsel || out->capacity() < in.capacity()) {
    out->Configure(nsel, in.capacity() > 0 ? in.capacity() : in.num_rows());
  } else {
    out->Clear();
  }
  const size_t n = in.num_rows();
  if (n == 0) return Status::OK();
  if (!batched_ok_) return ProcessBatchFallback(in, 0, out);

  // ---- Pure columnar precompute (side-effect-free) --------------------
  // Runs before any stateful per-lane work, so an evaluation error here
  // can replay the whole batch tuple-at-a-time without having advanced
  // SFUN state (and errors that the per-tuple path never hits — a
  // projection trapping on a lane its WHERE rejects — vanish in replay).
  batch_scratch_.Reset();
  ExprProgram::BatchContext bctx;
  bctx.batch = &in;  // mask defaults to the batch's selection vector
  const uint8_t* sel = in.selection();

  bool where_col_ok = false;
  if (plan_->where != nullptr && where_prog_->batchable()) {
    if (!where_prog_->EvalBatch(bctx, &batch_scratch_, &where_col_).ok()) {
      return ProcessBatchFallback(in, 0, out);
    }
    where_col_ok = true;
    admit_mask_.resize(n);
    for (size_t i = 0; i < n; ++i) {
      admit_mask_[i] = sel[i] != 0 &&
                       RawValueAsBool(where_col_.type[i], where_col_.raw[i]);
    }
    bctx.mask = admit_mask_.data();
  }
  for (size_t c = 0; c < nsel; ++c) {
    select_col_ok_[c] = 0;
    if (select_progs_[c]->batchable()) {
      if (!select_progs_[c]
               ->EvalBatch(bctx, &batch_scratch_, &select_cols_[c])
               .ok()) {
        return ProcessBatchFallback(in, 0, out);
      }
      select_col_ok_[c] = 1;
    }
  }

  // ---- Per-lane admit + append ----------------------------------------
  bool all_cols = true;
  for (size_t c = 0; c < nsel; ++c) all_cols = all_cols && select_col_ok_[c];
  const bool columnar_append =
      (plan_->where == nullptr || where_col_ok) && all_cols;
  for (size_t i = 0; i < n; ++i) {
    if (!sel[i]) continue;
    ++tuples_in_;
    bool pass = true;
    if (plan_->where != nullptr) {
      if (where_col_ok) {
        pass = admit_mask_[i] != 0;
      } else {
        // Stateful predicate (ssample): compiled row mode, lane order.
        ExprProgram::RowContext rc;
        rc.batch = &in;
        rc.row = i;
        rc.sfun_states = states_.data();
        rc.num_sfun_states = states_.size();
        STREAMOP_ASSIGN_OR_RETURN(Value wv, where_prog_->EvalRow(rc));
        pass = wv.AsBool();
      }
    }
    if (!pass) continue;
    ++tuples_out_;
    if (columnar_append) {
      // Fully columnar: every projection column is precomputed (a pure
      // projection without SFUNs always is), so admission is a straight
      // column-to-column append.
      for (size_t c = 0; c < nsel; ++c) {
        out->AppendRaw(c, select_cols_[c].type[i], select_cols_[c].raw[i]);
      }
      out->FinishRow();
    } else {
      // Stateful lanes: evaluate the full row first so an error cannot
      // leave `out` with a partially appended row.
      std::vector<Value>& row = row_out_.mutable_values();
      row.clear();
      row.reserve(nsel);
      for (size_t c = 0; c < nsel; ++c) {
        if (select_col_ok_[c]) {
          row.push_back(MaterializeRawValue(select_cols_[c].type[i],
                                            select_cols_[c].raw[i]));
        } else {
          ExprProgram::RowContext rc;
          rc.batch = &in;
          rc.row = i;
          rc.sfun_states = states_.data();
          rc.num_sfun_states = states_.size();
          STREAMOP_ASSIGN_OR_RETURN(Value v, select_progs_[c]->EvalRow(rc));
          row.push_back(std::move(v));
        }
      }
      out->AppendTuple(row_out_);
    }
  }
  return Status::OK();
}

}  // namespace streamop
