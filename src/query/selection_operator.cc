#include "query/selection_operator.h"

#include "common/hash.h"
#include "expr/evaluator.h"

namespace streamop {

SelectionOperator::SelectionOperator(std::shared_ptr<const SelectionPlan> plan)
    : plan_(std::move(plan)) {
  const size_t n = plan_->sfun_states.size();
  blobs_.reserve(n);
  states_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const SfunStateDef* def = plan_->sfun_states[i];
    size_t words =
        (def->size + sizeof(std::max_align_t) - 1) / sizeof(std::max_align_t);
    blobs_.push_back(std::make_unique<std::max_align_t[]>(words));
    void* mem = blobs_.back().get();
    def->init(mem, nullptr, HashCombine(plan_->seed, i));
    states_.push_back(mem);
  }
}

SelectionOperator::~SelectionOperator() {
  for (size_t i = 0; i < states_.size(); ++i) {
    const SfunStateDef* def = plan_->sfun_states[i];
    if (def->destroy != nullptr) def->destroy(states_[i]);
  }
}

Result<bool> SelectionOperator::Process(const Tuple& input, Tuple* out) {
  ++tuples_in_;
  EvalContext ctx;
  ctx.input = &input;
  ctx.sfun_states = states_.data();
  ctx.num_sfun_states = states_.size();
  STREAMOP_ASSIGN_OR_RETURN(bool pass,
                            EvaluatePredicate(plan_->where.get(), ctx));
  if (!pass) return false;
  ++tuples_out_;
  // Project into the caller's tuple in place; a reused output tuple keeps
  // its capacity, so the projection itself never allocates.
  std::vector<Value>& row = out->mutable_values();
  row.clear();
  row.reserve(plan_->select_exprs.size());
  for (const ExprPtr& e : plan_->select_exprs) {
    STREAMOP_ASSIGN_OR_RETURN(Value v, Evaluate(*e, ctx));
    row.push_back(std::move(v));
  }
  return true;
}

}  // namespace streamop
