// SelectionOperator: the ungrouped query form `SELECT exprs FROM s WHERE
// pred`. This is what Gigascope's low-level query nodes run — a cheap
// filter + projection straight off the ring buffer — and, with a stateful
// function in the predicate (ssample), the "basic subset-sum sampling via a
// user-defined function in a selection operator" baseline of Fig. 5.

#ifndef STREAMOP_QUERY_SELECTION_OPERATOR_H_
#define STREAMOP_QUERY_SELECTION_OPERATOR_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "expr/expr.h"
#include "expr/program.h"
#include "expr/stateful.h"
#include "tuple/schema.h"
#include "tuple/tuple.h"
#include "tuple/tuple_batch.h"

namespace streamop {

struct SelectionPlan {
  SchemaPtr input_schema;
  std::vector<ExprPtr> select_exprs;
  std::vector<std::string> output_names;
  SchemaPtr output_schema;
  ExprPtr where;
  std::vector<const SfunStateDef*> sfun_states;  // one instance each
  uint64_t seed = 1;
};

class SelectionOperator {
 public:
  explicit SelectionOperator(std::shared_ptr<const SelectionPlan> plan);
  ~SelectionOperator();

  SelectionOperator(const SelectionOperator&) = delete;
  SelectionOperator& operator=(const SelectionOperator&) = delete;

  /// Processes one tuple; returns true and fills *out when it passes the
  /// WHERE clause.
  Result<bool> Process(const Tuple& input, Tuple* out);

  /// Batched hot path (DESIGN.md §9): filters + projects every selected
  /// lane of `in` into `out` (cleared and reshaped first), equivalent
  /// lane-for-lane to calling Process() in row order — stateful predicates
  /// (ssample) see lanes in exactly that order. Pure predicates and
  /// projections run column-at-a-time through compiled programs; stateful
  /// ones drop to compiled row mode per lane; uncompilable clauses fall
  /// back to Process() per lane.
  Status ProcessBatch(const TupleBatch& in, TupleBatch* out);

  const SelectionPlan& plan() const { return *plan_; }
  uint64_t tuples_in() const { return tuples_in_; }
  uint64_t tuples_out() const { return tuples_out_; }

 private:
  Status ProcessBatchFallback(const TupleBatch& in, size_t first_lane,
                              TupleBatch* out);

  std::shared_ptr<const SelectionPlan> plan_;
  std::vector<std::unique_ptr<std::max_align_t[]>> blobs_;
  std::vector<void*> states_;
  uint64_t tuples_in_ = 0;
  uint64_t tuples_out_ = 0;

  // Compiled once at construction (see SamplingOperator::CompilePrograms
  // for the rationale); batched_ok_ gates the columnar path.
  std::optional<ExprProgram> where_prog_;
  std::vector<std::optional<ExprProgram>> select_progs_;
  bool batched_ok_ = false;

  // Per-batch columnar scratch, capacity-stable across batches.
  VecCol where_col_;
  std::vector<VecCol> select_cols_;
  std::vector<uint8_t> select_col_ok_;
  std::vector<uint8_t> admit_mask_;
  ExprProgram::BatchScratch batch_scratch_;
  Tuple batch_row_;
  Tuple row_out_;
};

}  // namespace streamop

#endif  // STREAMOP_QUERY_SELECTION_OPERATOR_H_
