// SelectionOperator: the ungrouped query form `SELECT exprs FROM s WHERE
// pred`. This is what Gigascope's low-level query nodes run — a cheap
// filter + projection straight off the ring buffer — and, with a stateful
// function in the predicate (ssample), the "basic subset-sum sampling via a
// user-defined function in a selection operator" baseline of Fig. 5.

#ifndef STREAMOP_QUERY_SELECTION_OPERATOR_H_
#define STREAMOP_QUERY_SELECTION_OPERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "expr/expr.h"
#include "expr/stateful.h"
#include "tuple/schema.h"
#include "tuple/tuple.h"

namespace streamop {

struct SelectionPlan {
  SchemaPtr input_schema;
  std::vector<ExprPtr> select_exprs;
  std::vector<std::string> output_names;
  SchemaPtr output_schema;
  ExprPtr where;
  std::vector<const SfunStateDef*> sfun_states;  // one instance each
  uint64_t seed = 1;
};

class SelectionOperator {
 public:
  explicit SelectionOperator(std::shared_ptr<const SelectionPlan> plan);
  ~SelectionOperator();

  SelectionOperator(const SelectionOperator&) = delete;
  SelectionOperator& operator=(const SelectionOperator&) = delete;

  /// Processes one tuple; returns true and fills *out when it passes the
  /// WHERE clause.
  Result<bool> Process(const Tuple& input, Tuple* out);

  const SelectionPlan& plan() const { return *plan_; }
  uint64_t tuples_in() const { return tuples_in_; }
  uint64_t tuples_out() const { return tuples_out_; }

 private:
  std::shared_ptr<const SelectionPlan> plan_;
  std::vector<std::unique_ptr<std::max_align_t[]>> blobs_;
  std::vector<void*> states_;
  uint64_t tuples_in_ = 0;
  uint64_t tuples_out_ = 0;
};

}  // namespace streamop

#endif  // STREAMOP_QUERY_SELECTION_OPERATOR_H_
