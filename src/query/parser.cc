#include "query/parser.h"

#include "query/lexer.h"

namespace streamop {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ParsedQuery> ParseQuery() {
    ParsedQuery q;
    STREAMOP_RETURN_NOT_OK(Expect(TokenKind::kSelect));
    STREAMOP_ASSIGN_OR_RETURN(q.select, ParseItemList());
    STREAMOP_RETURN_NOT_OK(Expect(TokenKind::kFrom));
    STREAMOP_ASSIGN_OR_RETURN(q.from, ExpectIdentifier("stream name"));

    if (Accept(TokenKind::kWhere)) {
      STREAMOP_ASSIGN_OR_RETURN(q.where, ParseExpr());
    }
    if (Accept(TokenKind::kGroup)) {
      STREAMOP_RETURN_NOT_OK(Expect(TokenKind::kBy));
      STREAMOP_ASSIGN_OR_RETURN(q.group_by, ParseItemList());
    }
    if (Accept(TokenKind::kSupergroup)) {
      Accept(TokenKind::kBy);  // SUPERGROUP BY and SUPERGROUP both accepted
      for (;;) {
        STREAMOP_ASSIGN_OR_RETURN(std::string name,
                                  ExpectIdentifier("supergroup variable"));
        q.supergroup.push_back(std::move(name));
        if (!Accept(TokenKind::kComma)) break;
      }
    }
    if (Accept(TokenKind::kHaving)) {
      STREAMOP_ASSIGN_OR_RETURN(q.having, ParseExpr());
    }
    while (Accept(TokenKind::kCleaning)) {
      if (Accept(TokenKind::kWhen)) {
        if (q.cleaning_when != nullptr) {
          return Status::ParseError("duplicate CLEANING WHEN clause");
        }
        STREAMOP_ASSIGN_OR_RETURN(q.cleaning_when, ParseExpr());
      } else if (Accept(TokenKind::kBy)) {
        if (q.cleaning_by != nullptr) {
          return Status::ParseError("duplicate CLEANING BY clause");
        }
        STREAMOP_ASSIGN_OR_RETURN(q.cleaning_by, ParseExpr());
      } else {
        return ErrorHere("expected WHEN or BY after CLEANING");
      }
    }
    Accept(TokenKind::kSemicolon);
    STREAMOP_RETURN_NOT_OK(Expect(TokenKind::kEof));
    return q;
  }

  Result<ExprPtr> ParseBareExpression() {
    STREAMOP_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    STREAMOP_RETURN_NOT_OK(Expect(TokenKind::kEof));
    return e;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }

  const Token& Advance() { return tokens_[pos_++]; }

  bool Accept(TokenKind kind) {
    if (Peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(TokenKind kind) {
    if (Peek().kind != kind) {
      return Status::ParseError(std::string("expected ") +
                                TokenKindToString(kind) + " but found " +
                                TokenKindToString(Peek().kind) + " at offset " +
                                std::to_string(Peek().offset));
    }
    ++pos_;
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier(const char* what) {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Status::ParseError(std::string("expected ") + what +
                                " at offset " + std::to_string(Peek().offset));
    }
    return Advance().text;
  }

  Status ErrorHere(const std::string& msg) {
    return Status::ParseError(msg + " at offset " +
                              std::to_string(Peek().offset));
  }

  Result<std::vector<SelectItem>> ParseItemList() {
    std::vector<SelectItem> items;
    for (;;) {
      SelectItem item;
      STREAMOP_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (Accept(TokenKind::kAs)) {
        STREAMOP_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("alias"));
      }
      items.push_back(std::move(item));
      if (!Accept(TokenKind::kComma)) break;
    }
    return items;
  }

  // Recursion-depth guard: a pathological input like "((((((…" or
  // "NOT NOT NOT …" recurses once per token, and with no bound that is a
  // stack overflow (a crash, not a Status). 256 levels is far beyond any
  // legitimate query while keeping worst-case stack use small.
  static constexpr int kMaxExprDepth = 256;

  struct DepthGuard {
    explicit DepthGuard(int* depth) : depth(depth) { ++*depth; }
    ~DepthGuard() { --*depth; }
    int* depth;
  };

  // Precedence climbing: OR < AND < NOT < comparison < add < mul < unary.
  Result<ExprPtr> ParseExpr() {
    if (depth_ >= kMaxExprDepth) {
      return Status::ParseError("expression nests deeper than " +
                                std::to_string(kMaxExprDepth) + " levels");
    }
    DepthGuard guard(&depth_);
    return ParseOr();
  }

  Result<ExprPtr> ParseOr() {
    STREAMOP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (Accept(TokenKind::kOr)) {
      STREAMOP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Expr::Binary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    STREAMOP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (Accept(TokenKind::kAnd)) {
      STREAMOP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = Expr::Binary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (Accept(TokenKind::kNot)) {
      if (depth_ >= kMaxExprDepth) {
        return Status::ParseError("expression nests deeper than " +
                                  std::to_string(kMaxExprDepth) + " levels");
      }
      DepthGuard guard(&depth_);
      STREAMOP_ASSIGN_OR_RETURN(ExprPtr e, ParseNot());
      return Expr::Unary(UnaryOp::kNot, std::move(e));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    STREAMOP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    BinaryOp op;
    switch (Peek().kind) {
      case TokenKind::kEq:
        op = BinaryOp::kEq;
        break;
      case TokenKind::kNe:
        op = BinaryOp::kNe;
        break;
      case TokenKind::kLt:
        op = BinaryOp::kLt;
        break;
      case TokenKind::kLe:
        op = BinaryOp::kLe;
        break;
      case TokenKind::kGt:
        op = BinaryOp::kGt;
        break;
      case TokenKind::kGe:
        op = BinaryOp::kGe;
        break;
      default:
        return lhs;
    }
    Advance();
    STREAMOP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
    return Expr::Binary(op, std::move(lhs), std::move(rhs));
  }

  Result<ExprPtr> ParseAdditive() {
    STREAMOP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    for (;;) {
      BinaryOp op;
      if (Peek().kind == TokenKind::kPlus) {
        op = BinaryOp::kAdd;
      } else if (Peek().kind == TokenKind::kMinus) {
        op = BinaryOp::kSub;
      } else {
        return lhs;
      }
      Advance();
      STREAMOP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    STREAMOP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    for (;;) {
      BinaryOp op;
      if (Peek().kind == TokenKind::kStar) {
        op = BinaryOp::kMul;
      } else if (Peek().kind == TokenKind::kSlash) {
        op = BinaryOp::kDiv;
      } else if (Peek().kind == TokenKind::kPercent) {
        op = BinaryOp::kMod;
      } else {
        return lhs;
      }
      Advance();
      STREAMOP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (Accept(TokenKind::kMinus)) {
      if (depth_ >= kMaxExprDepth) {
        return Status::ParseError("expression nests deeper than " +
                                  std::to_string(kMaxExprDepth) + " levels");
      }
      DepthGuard guard(&depth_);
      STREAMOP_ASSIGN_OR_RETURN(ExprPtr e, ParseUnary());
      return Expr::Unary(UnaryOp::kNeg, std::move(e));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kIntLiteral:
        Advance();
        return Expr::Literal(Value::UInt(t.int_value));
      case TokenKind::kFloatLiteral:
        Advance();
        return Expr::Literal(Value::Double(t.float_value));
      case TokenKind::kStringLiteral:
        Advance();
        return Expr::Literal(Value::String(t.text));
      case TokenKind::kTrue:
        Advance();
        return Expr::Literal(Value::Bool(true));
      case TokenKind::kFalse:
        Advance();
        return Expr::Literal(Value::Bool(false));
      case TokenKind::kLParen: {
        Advance();
        STREAMOP_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        STREAMOP_RETURN_NOT_OK(Expect(TokenKind::kRParen));
        return e;
      }
      case TokenKind::kIdentifier: {
        Token id = Advance();
        if (Peek().kind == TokenKind::kLParen) {
          Advance();
          ExprPtr call = Expr::Call(id.text, {}, id.has_dollar);
          if (Accept(TokenKind::kStar)) {
            call->star_arg = true;
            STREAMOP_RETURN_NOT_OK(Expect(TokenKind::kRParen));
            return call;
          }
          if (!Accept(TokenKind::kRParen)) {
            for (;;) {
              STREAMOP_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
              call->children.push_back(std::move(arg));
              if (!Accept(TokenKind::kComma)) break;
            }
            STREAMOP_RETURN_NOT_OK(Expect(TokenKind::kRParen));
          }
          return call;
        }
        if (id.has_dollar) {
          return Status::ParseError(
              "'$' is only valid on a superaggregate call, near offset " +
              std::to_string(id.offset));
        }
        return Expr::Column(id.text);
      }
      default:
        return Status::ParseError(std::string("unexpected ") +
                                  TokenKindToString(t.kind) +
                                  " in expression at offset " +
                                  std::to_string(t.offset));
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<ParsedQuery> ParseQuery(const std::string& text) {
  STREAMOP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser p(std::move(tokens));
  return p.ParseQuery();
}

Result<ExprPtr> ParseExpression(const std::string& text) {
  STREAMOP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser p(std::move(tokens));
  return p.ParseBareExpression();
}

}  // namespace streamop
