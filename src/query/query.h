// Public entry point: compile query text into an executable operator.
//
//   Catalog catalog = Catalog::Default();
//   STREAMOP_ASSIGN_OR_RETURN(CompiledQuery q,
//                             CompileQuery(sql, catalog, {.seed = 7}));
//   SamplingOperator op(q.sampling);
//   ... op.Process(tuple) ... op.FinishStream() ... op.DrainOutput();

#ifndef STREAMOP_QUERY_QUERY_H_
#define STREAMOP_QUERY_QUERY_H_

#include <string>

#include "query/analyzer.h"

namespace streamop {

/// Parses and analyzes `text` against `catalog`.
Result<CompiledQuery> CompileQuery(const std::string& text,
                                   const Catalog& catalog,
                                   const AnalyzerOptions& options = {});

}  // namespace streamop

#endif  // STREAMOP_QUERY_QUERY_H_
