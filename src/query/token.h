// Tokens of the extended query language (§5):
//   SELECT ... FROM ... WHERE ... GROUP BY ... SUPERGROUP ... HAVING ...
//   CLEANING WHEN ... CLEANING BY ...

#ifndef STREAMOP_QUERY_TOKEN_H_
#define STREAMOP_QUERY_TOKEN_H_

#include <cstdint>
#include <string>

namespace streamop {

enum class TokenKind {
  kEof,
  kIdentifier,   // possibly followed by '$' (superaggregate marker)
  kIntLiteral,
  kFloatLiteral,
  kStringLiteral,
  // keywords
  kSelect,
  kFrom,
  kWhere,
  kGroup,
  kBy,
  kSupergroup,
  kHaving,
  kCleaning,
  kWhen,
  kAs,
  kAnd,
  kOr,
  kNot,
  kTrue,
  kFalse,
  // punctuation / operators
  kComma,
  kLParen,
  kRParen,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kPercent,
  kEq,
  kNe,       // <> or !=
  kLt,
  kLe,
  kGt,
  kGe,
  kSemicolon,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;       // identifier / literal spelling
  bool has_dollar = false;  // identifier followed by '$'
  uint64_t int_value = 0;
  double float_value = 0.0;
  size_t offset = 0;  // byte offset in the query text (for error messages)
};

const char* TokenKindToString(TokenKind k);

}  // namespace streamop

#endif  // STREAMOP_QUERY_TOKEN_H_
