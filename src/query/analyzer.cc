#include "query/analyzer.h"

#include "common/string_util.h"
#include "expr/scalar_function.h"
#include "expr/stateful.h"

namespace streamop {

namespace {

// Which clause an expression is being analyzed for; governs the legal
// reference sources (see §5's operator semantics).
enum class Clause {
  kGroupBy,       // input columns + scalar functions only
  kWhere,         // input, group-by vars, sfuns, superaggs
  kCleaningWhen,  // like WHERE (evaluated per tuple against the supergroup)
  kCleaningBy,    // group-by vars, aggregates, sfuns, superaggs
  kHaving,        // like CLEANING BY
  kSelect,        // like CLEANING BY
  kAggArg,        // aggregate argument: evaluated per tuple at update time
  kSelectionWhere,   // ungrouped query: input + sfuns
  kSelectionSelect,  // ungrouped query: input + sfuns
};

const char* ClauseName(Clause c) {
  switch (c) {
    case Clause::kGroupBy:
      return "GROUP BY";
    case Clause::kWhere:
      return "WHERE";
    case Clause::kCleaningWhen:
      return "CLEANING WHEN";
    case Clause::kCleaningBy:
      return "CLEANING BY";
    case Clause::kHaving:
      return "HAVING";
    case Clause::kSelect:
      return "SELECT";
    case Clause::kAggArg:
      return "aggregate argument";
    case Clause::kSelectionWhere:
      return "WHERE";
    case Clause::kSelectionSelect:
      return "SELECT";
  }
  return "?";
}

bool ClauseAllowsInput(Clause c) {
  return c == Clause::kGroupBy || c == Clause::kWhere ||
         c == Clause::kCleaningWhen || c == Clause::kAggArg ||
         c == Clause::kSelectionWhere || c == Clause::kSelectionSelect;
}

bool ClauseAllowsGroupBy(Clause c) {
  return c == Clause::kWhere || c == Clause::kCleaningWhen ||
         c == Clause::kCleaningBy || c == Clause::kHaving ||
         c == Clause::kSelect || c == Clause::kAggArg;
}

bool ClauseAllowsAggregates(Clause c) {
  return c == Clause::kCleaningBy || c == Clause::kHaving ||
         c == Clause::kSelect;
}

bool ClauseAllowsSuperAggs(Clause c) {
  return c == Clause::kWhere || c == Clause::kCleaningWhen ||
         c == Clause::kCleaningBy || c == Clause::kHaving ||
         c == Clause::kSelect;
}

bool ClauseAllowsSfuns(Clause c) { return c != Clause::kGroupBy; }

class Analyzer {
 public:
  Analyzer(const ParsedQuery& query, const Catalog& catalog,
           const AnalyzerOptions& options)
      : q_(query), catalog_(catalog), options_(options) {}

  Result<CompiledQuery> Run() {
    EnsureBuiltinSfunPackagesRegistered();
    STREAMOP_ASSIGN_OR_RETURN(schema_, catalog_.Find(q_.from));
    if (q_.group_by.empty()) return RunSelection();
    return RunSampling();
  }

 private:
  // ---------- ungrouped (selection) queries ----------

  Result<CompiledQuery> RunSelection() {
    if (q_.having != nullptr || q_.cleaning_when != nullptr ||
        q_.cleaning_by != nullptr || !q_.supergroup.empty()) {
      return Status::AnalysisError(
          "HAVING/SUPERGROUP/CLEANING clauses require a GROUP BY clause");
    }
    auto plan = std::make_shared<SelectionPlan>();
    plan->input_schema = schema_;
    plan->seed = options_.seed;
    if (q_.where != nullptr) {
      STREAMOP_ASSIGN_OR_RETURN(
          plan->where, Rewrite(q_.where->Clone(), Clause::kSelectionWhere));
    }
    std::vector<Field> out_fields;
    for (const SelectItem& item : q_.select) {
      STREAMOP_ASSIGN_OR_RETURN(
          ExprPtr e, Rewrite(item.expr->Clone(), Clause::kSelectionSelect));
      std::string name = OutputName(item);
      // Ordering propagates through monotone projections so that a
      // downstream (cascaded) query can still infer windows.
      Ordering ord = IsOrderedExpr(*e) ? Ordering::kIncreasing : Ordering::kNone;
      plan->select_exprs.push_back(std::move(e));
      plan->output_names.push_back(name);
      out_fields.push_back({name, FieldType::kNull, ord});
    }
    plan->sfun_states = sfun_states_;
    plan->output_schema =
        std::make_shared<Schema>("result", std::move(out_fields));
    CompiledQuery out;
    out.kind = CompiledQueryKind::kSelection;
    out.selection = std::move(plan);
    return out;
  }

  // ---------- grouped (sampling) queries ----------

  Result<CompiledQuery> RunSampling() {
    if ((q_.cleaning_when == nullptr) != (q_.cleaning_by == nullptr)) {
      return Status::AnalysisError(
          "CLEANING WHEN and CLEANING BY must be used together");
    }
    auto plan = std::make_shared<SamplingQueryPlan>();
    plan->input_schema = schema_;
    plan->seed = options_.seed;

    // GROUP BY items: resolve over the input schema, name the variables,
    // and infer which are ordered (window-defining).
    for (const SelectItem& item : q_.group_by) {
      STREAMOP_ASSIGN_OR_RETURN(ExprPtr e,
                                Rewrite(item.expr->Clone(), Clause::kGroupBy));
      std::string name = OutputName(item);
      for (const std::string& existing : plan->group_by_names) {
        if (EqualsIgnoreCase(existing, name)) {
          return Status::AnalysisError("duplicate group-by variable '" + name +
                                       "'");
        }
      }
      plan->group_by_ordered.push_back(IsOrderedExpr(*e));
      plan->group_by_exprs.push_back(std::move(e));
      plan->group_by_names.push_back(std::move(name));
    }
    plan_ = plan.get();

    // SUPERGROUP: each name must be a group-by variable; ordered variables
    // are implicitly part of every supergroup and are dropped from the key.
    for (const std::string& name : q_.supergroup) {
      int slot = -1;
      for (size_t i = 0; i < plan->group_by_names.size(); ++i) {
        if (EqualsIgnoreCase(plan->group_by_names[i], name)) {
          slot = static_cast<int>(i);
          break;
        }
      }
      if (slot < 0) {
        return Status::AnalysisError(
            "SUPERGROUP variable '" + name +
            "' is not a group-by variable (supergroups are a subset of the "
            "GROUP BY list)");
      }
      if (!plan->group_by_ordered[static_cast<size_t>(slot)]) {
        plan->supergroup_slots.push_back(slot);
      }
    }

    if (q_.where != nullptr) {
      STREAMOP_ASSIGN_OR_RETURN(plan->where,
                                Rewrite(q_.where->Clone(), Clause::kWhere));
    }
    if (q_.cleaning_when != nullptr) {
      STREAMOP_ASSIGN_OR_RETURN(
          plan->cleaning_when,
          Rewrite(q_.cleaning_when->Clone(), Clause::kCleaningWhen));
    }
    if (q_.cleaning_by != nullptr) {
      STREAMOP_ASSIGN_OR_RETURN(
          plan->cleaning_by,
          Rewrite(q_.cleaning_by->Clone(), Clause::kCleaningBy));
    }
    if (q_.having != nullptr) {
      STREAMOP_ASSIGN_OR_RETURN(plan->having,
                                Rewrite(q_.having->Clone(), Clause::kHaving));
    }

    std::vector<Field> out_fields;
    for (const SelectItem& item : q_.select) {
      STREAMOP_ASSIGN_OR_RETURN(ExprPtr e,
                                Rewrite(item.expr->Clone(), Clause::kSelect));
      std::string name = OutputName(item);
      // A projected ordered group-by variable (e.g. tb) keeps its ordering
      // in the output schema, so cascaded queries can window on it.
      Ordering ord = Ordering::kNone;
      if (e->kind == ExprKind::kColumnRef && e->source == RefSource::kGroupBy &&
          e->slot >= 0 &&
          plan->group_by_ordered[static_cast<size_t>(e->slot)]) {
        ord = Ordering::kIncreasing;
      }
      plan->select_exprs.push_back(std::move(e));
      plan->output_names.push_back(name);
      out_fields.push_back({name, FieldType::kNull, ord});
    }

    plan->aggregates = std::move(aggregates_);
    plan->superaggs = std::move(superaggs_);
    plan->sfun_states = std::move(sfun_states_);
    plan->output_schema =
        std::make_shared<Schema>("result", std::move(out_fields));

    CompiledQuery out;
    out.kind = CompiledQueryKind::kSampling;
    out.sampling = std::move(plan);
    return out;
  }

  // ---------- shared machinery ----------

  std::string OutputName(const SelectItem& item) const {
    if (!item.alias.empty()) return item.alias;
    if (item.expr->kind == ExprKind::kColumnRef) return item.expr->column_name;
    return item.expr->ToString();
  }

  // A group-by expression is ordered (window-defining) when it is a
  // monotone arithmetic image of an ordered input attribute: the attribute
  // itself, or +,-,*,/ with a literal (time/20). Modulo and function calls
  // destroy monotonicity.
  bool IsOrderedExpr(const Expr& e) const {
    switch (e.kind) {
      case ExprKind::kColumnRef:
        if (e.source == RefSource::kInput && e.slot >= 0) {
          return schema_->field(static_cast<size_t>(e.slot)).ordering !=
                 Ordering::kNone;
        }
        return false;
      case ExprKind::kBinary:
        if (e.bop == BinaryOp::kAdd || e.bop == BinaryOp::kSub ||
            e.bop == BinaryOp::kMul || e.bop == BinaryOp::kDiv) {
          bool l_lit = e.children[0]->kind == ExprKind::kLiteral;
          bool r_lit = e.children[1]->kind == ExprKind::kLiteral;
          if (r_lit) return IsOrderedExpr(*e.children[0]);
          if (l_lit && e.bop != BinaryOp::kSub && e.bop != BinaryOp::kDiv) {
            return IsOrderedExpr(*e.children[1]);
          }
        }
        return false;
      default:
        return false;
    }
  }

  // Finds a group-by variable by name; -1 if absent.
  int FindGroupByVar(const std::string& name) const {
    if (plan_ == nullptr) return -1;
    for (size_t i = 0; i < plan_->group_by_names.size(); ++i) {
      if (EqualsIgnoreCase(plan_->group_by_names[i], name)) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  Result<ExprPtr> ResolveColumn(ExprPtr e, Clause clause) {
    if (ClauseAllowsGroupBy(clause)) {
      int slot = FindGroupByVar(e->column_name);
      if (slot >= 0) {
        e->source = RefSource::kGroupBy;
        e->slot = slot;
        return e;
      }
    }
    if (ClauseAllowsInput(clause)) {
      int slot = schema_->FieldIndex(e->column_name);
      if (slot >= 0) {
        e->source = RefSource::kInput;
        e->slot = slot;
        return e;
      }
    }
    return Status::AnalysisError("unknown column or variable '" +
                                 e->column_name + "' in " + ClauseName(clause) +
                                 " clause");
  }

  // Registers (or reuses) an aggregate spec; returns its slot.
  Result<int> AddAggregate(AggregateKind kind, ExprPtr arg, bool star,
                           const std::string& display, double param = 0.0) {
    for (size_t i = 0; i < aggregates_.size(); ++i) {
      if (aggregates_[i].kind == kind && aggregates_[i].display == display) {
        return static_cast<int>(i);
      }
    }
    AggregateSpec spec;
    spec.kind = kind;
    spec.arg = std::move(arg);
    spec.star = star;
    spec.param = param;
    spec.display = display;
    aggregates_.push_back(std::move(spec));
    return static_cast<int>(aggregates_.size() - 1);
  }

  Result<ExprPtr> RewriteAggregateCall(ExprPtr e, Clause clause) {
    if (!ClauseAllowsAggregates(clause)) {
      return Status::AnalysisError("aggregate '" + e->func_name +
                                   "' is not allowed in the " +
                                   std::string(ClauseName(clause)) + " clause");
    }
    AggregateKind kind;
    LookupAggregateKind(e->func_name, &kind);  // caller checked
    std::string display = e->ToString();
    ExprPtr arg;
    bool star = e->star_arg;
    double param = 0.0;
    if (kind == AggregateKind::kQuantile) {
      // quantile(x, phi) with literal phi in [0, 1]; median(x) = 0.5.
      bool is_median = EqualsIgnoreCase(e->func_name, "median");
      size_t want = is_median ? 1 : 2;
      if (star || e->children.size() != want) {
        return Status::AnalysisError(
            is_median ? "median(x) takes exactly one argument"
                      : "quantile(x, phi) takes exactly two arguments");
      }
      if (is_median) {
        param = 0.5;
      } else {
        if (e->children[1]->kind != ExprKind::kLiteral) {
          return Status::AnalysisError(
              "the phi of quantile(x, phi) must be a literal");
        }
        const FieldType phi_type = e->children[1]->literal.type();
        if (phi_type != FieldType::kDouble && phi_type != FieldType::kUInt &&
            phi_type != FieldType::kInt) {
          return Status::AnalysisError(
              "the phi of quantile(x, phi) must be a numeric literal");
        }
        param = e->children[1]->literal.AsDouble();
        if (param < 0.0 || param > 1.0) {
          return Status::AnalysisError("quantile phi must be in [0, 1]");
        }
      }
      STREAMOP_ASSIGN_OR_RETURN(arg, Rewrite(e->children[0], Clause::kAggArg));
      STREAMOP_ASSIGN_OR_RETURN(
          int qslot,
          AddAggregate(kind, std::move(arg), false, display, param));
      return Expr::AggregateRef(qslot);
    }
    if (!star) {
      if (e->children.size() != 1) {
        return Status::AnalysisError("aggregate '" + e->func_name +
                                     "' takes exactly one argument");
      }
      STREAMOP_ASSIGN_OR_RETURN(arg,
                                Rewrite(e->children[0], Clause::kAggArg));
    } else if (kind != AggregateKind::kCount) {
      return Status::AnalysisError("only count(*) may use '*'");
    }
    STREAMOP_ASSIGN_OR_RETURN(int slot,
                              AddAggregate(kind, std::move(arg), star, display));
    return Expr::AggregateRef(slot);
  }

  Result<ExprPtr> RewriteSuperAggCall(ExprPtr e, Clause clause) {
    if (!ClauseAllowsSuperAggs(clause)) {
      return Status::AnalysisError("superaggregate '" + e->func_name +
                                   "$' is not allowed in the " +
                                   std::string(ClauseName(clause)) + " clause");
    }
    SuperAggKind kind;
    if (!LookupSuperAggKind(e->func_name, &kind)) {
      return Status::AnalysisError("unknown superaggregate '" + e->func_name +
                                   "$'");
    }
    std::string display = e->ToString();
    for (size_t i = 0; i < superaggs_.size(); ++i) {
      if (superaggs_[i].display == display) {
        return Expr::SuperAggRef(static_cast<int>(i));
      }
    }

    SuperAggSpec spec;
    spec.kind = kind;
    spec.display = display;
    switch (kind) {
      case SuperAggKind::kCountDistinct:
        if (!e->children.empty()) {
          return Status::AnalysisError(
              "count_distinct$ takes no arguments (use count_distinct$(*))");
        }
        break;
      case SuperAggKind::kKthSmallest:
      case SuperAggKind::kKthLargest: {
        if (e->children.size() != 2) {
          return Status::AnalysisError(
              "kth_smallest/kth_largest$(var, k) take exactly two arguments");
        }
        if (e->children[0]->kind != ExprKind::kColumnRef) {
          return Status::AnalysisError(
              "the first argument of kth_smallest_value$ must be a group-by "
              "variable");
        }
        int slot = FindGroupByVar(e->children[0]->column_name);
        if (slot < 0) {
          return Status::AnalysisError(
              "kth_smallest_value$ argument '" + e->children[0]->column_name +
              "' is not a group-by variable");
        }
        spec.group_by_slot = slot;
        if (e->children[1]->kind != ExprKind::kLiteral) {
          return Status::AnalysisError(
              "the k of kth_smallest_value$ must be a literal");
        }
        if (e->children[1]->literal.type() != FieldType::kUInt) {
          return Status::AnalysisError(
              "the k of kth_smallest_value$ must be an integer literal");
        }
        spec.k = e->children[1]->literal.AsUInt();
        if (spec.k == 0) {
          return Status::AnalysisError("kth_smallest_value$ requires k >= 1");
        }
        break;
      }
      case SuperAggKind::kSum:
      case SuperAggKind::kFirst: {
        if (e->children.size() != 1) {
          return Status::AnalysisError("superaggregate '" + e->func_name +
                                       "$' takes exactly one argument");
        }
        STREAMOP_ASSIGN_OR_RETURN(spec.arg,
                                  Rewrite(e->children[0], Clause::kAggArg));
        if (kind == SuperAggKind::kSum) {
          // Shadow group aggregate: subtracted when a cleaning phase
          // removes a group.
          STREAMOP_ASSIGN_OR_RETURN(
              spec.shadow_agg_slot,
              AddAggregate(AggregateKind::kSum, spec.arg->Clone(), false,
                           "__shadow_" + display));
        }
        break;
      }
      case SuperAggKind::kCount: {
        if (!e->children.empty() && !e->star_arg) {
          return Status::AnalysisError("count$ takes no arguments");
        }
        STREAMOP_ASSIGN_OR_RETURN(
            spec.shadow_agg_slot,
            AddAggregate(AggregateKind::kCount, nullptr, true,
                         "__shadow_" + display));
        break;
      }
    }
    superaggs_.push_back(std::move(spec));
    return Expr::SuperAggRef(static_cast<int>(superaggs_.size() - 1));
  }

  Result<ExprPtr> RewriteStatefulCall(ExprPtr e, const SfunDef* def,
                                      Clause clause) {
    if (!ClauseAllowsSfuns(clause)) {
      return Status::AnalysisError("stateful function '" + e->func_name +
                                   "' is not allowed in the " +
                                   std::string(ClauseName(clause)) + " clause");
    }
    int nargs = static_cast<int>(e->children.size());
    if (nargs < def->min_args || nargs > def->max_args) {
      return Status::AnalysisError(
          "stateful function '" + e->func_name + "' expects between " +
          std::to_string(def->min_args) + " and " +
          std::to_string(def->max_args) + " arguments, got " +
          std::to_string(nargs));
    }
    for (ExprPtr& c : e->children) {
      STREAMOP_ASSIGN_OR_RETURN(c, Rewrite(c, clause));
    }
    // Allocate (or reuse) the state slot for this function's state type.
    int slot = -1;
    for (size_t i = 0; i < sfun_states_.size(); ++i) {
      if (sfun_states_[i] == def->state) {
        slot = static_cast<int>(i);
        break;
      }
    }
    if (slot < 0) {
      sfun_states_.push_back(def->state);
      slot = static_cast<int>(sfun_states_.size() - 1);
    }
    e->kind = ExprKind::kStatefulCall;
    e->sfun = def;
    e->sfun_state_slot = slot;
    return e;
  }

  Result<ExprPtr> RewriteCall(ExprPtr e, Clause clause) {
    if (e->is_super) return RewriteSuperAggCall(std::move(e), clause);

    AggregateKind agg_kind;
    if (LookupAggregateKind(e->func_name, &agg_kind) &&
        ClauseAllowsAggregates(clause)) {
      return RewriteAggregateCall(std::move(e), clause);
    }

    const SfunDef* sfun = SfunRegistry::Global().FindFunction(e->func_name);
    if (sfun != nullptr) return RewriteStatefulCall(std::move(e), sfun, clause);

    const ScalarFunctionDef* scalar =
        ScalarFunctionRegistry::Global().Find(e->func_name);
    if (scalar != nullptr) {
      int nargs = static_cast<int>(e->children.size());
      if (nargs < scalar->min_args ||
          (scalar->max_args >= 0 && nargs > scalar->max_args)) {
        return Status::AnalysisError("function '" + e->func_name +
                                     "' called with " + std::to_string(nargs) +
                                     " arguments");
      }
      for (ExprPtr& c : e->children) {
        STREAMOP_ASSIGN_OR_RETURN(c, Rewrite(c, clause));
      }
      e->kind = ExprKind::kScalarCall;
      e->scalar = scalar;
      return e;
    }

    if (LookupAggregateKind(e->func_name, &agg_kind)) {
      return Status::AnalysisError("aggregate '" + e->func_name +
                                   "' is not allowed in the " +
                                   std::string(ClauseName(clause)) + " clause");
    }
    return Status::AnalysisError("unknown function '" + e->func_name + "'");
  }

  Result<ExprPtr> Rewrite(ExprPtr e, Clause clause) {
    switch (e->kind) {
      case ExprKind::kLiteral:
        return e;
      case ExprKind::kColumnRef:
        return ResolveColumn(std::move(e), clause);
      case ExprKind::kUnary:
      case ExprKind::kBinary: {
        for (ExprPtr& c : e->children) {
          STREAMOP_ASSIGN_OR_RETURN(c, Rewrite(c, clause));
        }
        return e;
      }
      case ExprKind::kCall:
        return RewriteCall(std::move(e), clause);
      default:
        return Status::Internal("unexpected analyzed node during analysis");
    }
  }

  const ParsedQuery& q_;
  const Catalog& catalog_;
  const AnalyzerOptions& options_;
  SchemaPtr schema_;
  SamplingQueryPlan* plan_ = nullptr;  // filled progressively (group-by names)
  std::vector<AggregateSpec> aggregates_;
  std::vector<SuperAggSpec> superaggs_;
  std::vector<const SfunStateDef*> sfun_states_;
};

}  // namespace

Result<CompiledQuery> AnalyzeQuery(const ParsedQuery& query,
                                   const Catalog& catalog,
                                   const AnalyzerOptions& options) {
  Analyzer a(query, catalog, options);
  return a.Run();
}

}  // namespace streamop
